"""Deterministic process-pool execution for the evaluation layer.

Every figure driver and design-space sweep in :mod:`repro.eval` reduces
to the same shape: map a pure, picklable task function over a list of
task descriptors and aggregate the results.  This module provides that
map with three guarantees:

* **Determinism** — results come back in task order regardless of worker
  count or completion order.  Each task carries an implicit index (its
  position in the input sequence); chunk results are written back into
  their original slots, so ``run_tasks(fn, tasks, jobs=N)`` is
  element-for-element identical to ``[fn(t) for t in tasks]`` for every
  ``N``.  Task functions must not depend on hidden cross-task state;
  anything stochastic must derive its seed from the task descriptor
  (see :func:`repro.seeding.derive_seed`), never from scheduling.
* **Graceful fallback** — ``jobs=1`` (the default everywhere) runs
  in-process with no pool, no pickling and no forking; so does any
  platform without the ``fork`` start method (the pool inherits warmed
  per-worker caches by forking, and spawn-based pools cannot execute
  tasks defined in unimportable ``__main__`` modules).
* **Cheap scheduling** — tasks are submitted in contiguous chunks
  (default: ~4 chunks per worker) so per-task IPC overhead amortizes
  over a chunk, while late chunks still balance load across workers.

Workers warm their private trace cache (:class:`repro.eval.runner.TraceCache`)
either by inheriting the parent's cache through ``fork`` or via the
``warm`` initializer argument, so a trace is generated at most once per
worker no matter how tasks are scheduled.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")
R = TypeVar("R")

#: Progress callback signature: ``progress(done, total)``.
ProgressFn = Callable[[int, int], None]

#: Trace-warming spec: ``(workload, threads, ops_per_thread, seed)``.
WarmSpec = Tuple[str, int, int, int]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` knob: None/1 -> serial, <=0 -> all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def pool_available() -> bool:
    """Whether this platform supports the fork-based worker pool."""
    try:
        return "fork" in mp.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def print_progress(prefix: str = "", stream=None) -> ProgressFn:
    """Progress callback printing ``prefix done/total`` lines (CLI use)."""

    out = stream if stream is not None else sys.stderr

    def report(done: int, total: int) -> None:
        print(f"{prefix}{done}/{total}", file=out, flush=True)

    return report


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> List[R]:
    """Worker-side body: execute one contiguous chunk of tasks."""
    return [fn(task) for task in chunk]


def _init_worker(warm: Tuple[WarmSpec, ...]) -> None:
    """Pool initializer: pre-generate traces into the worker's cache."""
    if warm:
        from repro.eval.runner import warm_trace_cache

        warm_trace_cache(warm)


class _ProgressGate:
    """Invoke the callback when crossing every ``log_every`` completions."""

    def __init__(self, progress: Optional[ProgressFn], total: int, log_every: int):
        self.progress = progress
        self.total = total
        self.log_every = max(1, log_every)
        self.done = 0

    def advance(self, n: int = 1) -> None:
        if self.progress is None:
            self.done += n
            return
        before = self.done // self.log_every
        self.done += n
        if self.done // self.log_every > before or self.done == self.total:
            self.progress(self.done, self.total)


def run_tasks(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    chunksize: Optional[int] = None,
    warm: Optional[Sequence[WarmSpec]] = None,
    supervise=None,
    codec=None,
) -> List[R]:
    """Map ``fn`` over ``tasks``, optionally on a process pool.

    Args:
        fn: a picklable (module-level) function of one task descriptor.
        tasks: picklable task descriptors; order defines result order.
        jobs: worker processes (1 = in-process serial, <=0 = all cores).
        progress: optional ``progress(done, total)`` callback.
        log_every: invoke ``progress`` every this many completed tasks
            (the final completion always reports).
        chunksize: tasks per pool submission; default targets ~4 chunks
            per worker.
        warm: trace specs pre-generated in each worker's cache (see
            :func:`repro.eval.runner.warm_trace_cache`).
        supervise: a :class:`repro.eval.supervisor.SupervisorConfig` (or
            ``True`` for defaults) to run under the crash-resilient
            supervisor: per-cell timeouts, retry/quarantine and the
            resumable checkpoint journal.  Quarantined cells come back
            as :class:`repro.eval.supervisor.CellFailure` in their slot.
        codec: ``(encode, decode)`` pair converting results to/from the
            JSON payloads of the checkpoint journal (supervised only).

    Returns:
        ``[fn(t) for t in tasks]`` — bit-identical to the serial run
        regardless of worker count or completion order.
    """
    if supervise is not None and supervise is not False:
        from .supervisor import SupervisorConfig, run_supervised

        cfg = supervise if isinstance(supervise, SupervisorConfig) else SupervisorConfig()
        return run_supervised(
            fn,
            tasks,
            jobs=jobs,
            config=cfg,
            progress=progress,
            log_every=log_every,
            warm=warm,
            codec=codec,
        )
    items = list(tasks)
    total = len(items)
    if total == 0:
        return []
    n_jobs = min(resolve_jobs(jobs), total)
    gate = _ProgressGate(progress, total, log_every)

    if n_jobs == 1 or not pool_available():
        out: List[R] = []
        for task in items:
            out.append(fn(task))
            gate.advance()
        return out

    size = chunksize if chunksize else max(1, -(-total // (n_jobs * 4)))
    ctx = mp.get_context("fork")
    results: List[Any] = [None] * total
    with ProcessPoolExecutor(
        max_workers=n_jobs,
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(tuple(warm or ()),),
    ) as pool:
        futures = {}
        for start in range(0, total, size):
            chunk = items[start : start + size]
            futures[pool.submit(_run_chunk, fn, chunk)] = (start, len(chunk))
        for fut in as_completed(futures):
            start, n = futures[fut]
            results[start : start + n] = fut.result()
            gate.advance(n)
    return results
