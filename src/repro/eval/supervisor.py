"""Supervised worker pool: timeouts, retries, quarantine, checkpoints.

:func:`repro.eval.parallel.run_tasks` gives the evaluation layer a
deterministic fork-pool map, but a fragile one: one crashed worker kills
the whole sweep, one hung cell blocks the pool forever, and an
interrupted 1000-cell run restarts from zero.  This module wraps the
same task-list shape with the supervision discipline a long measurement
campaign needs:

* **Per-cell wall-clock timeouts** — a cell that exceeds
  ``cell_timeout`` seconds has its worker killed and respawned; the cell
  is retried on another worker.
* **Dead-worker detection** — a worker that exits (nonzero status,
  ``os._exit``, OOM kill) is detected by EOF on its pipe; its in-flight
  cell is retried and the worker replaced.
* **Bounded retry with exponential backoff** — each failing cell is
  retried up to ``max_retries`` times with ``backoff_base * 2**n``
  second delays (capped at ``backoff_cap``).
* **Quarantine** — a cell that exhausts its retry budget becomes a
  structured :class:`CellFailure` in its result slot instead of
  aborting the sweep; every healthy cell still completes.
* **Checkpoint journal** — with ``journal`` set, each finished cell is
  appended to a JSONL file keyed by a content hash of (task function,
  task descriptor).  After a crash or SIGKILL, ``resume=True`` replays
  completed cells from the journal and re-runs only the missing ones.
* **Graceful SIGINT/SIGTERM** — in-flight cells get ``grace`` seconds
  to drain, the journal is flushed, and :class:`SweepInterrupted` is
  raised so the CLI can print a "resume with --resume" hint instead of
  a traceback.

Determinism contract: the supervisor never re-seeds or re-orders work —
results are slotted by task index and every cell derives its seed from
its own task descriptor (:func:`repro.seeding.derive_seeds`), so a
retried, resumed, or quarantine-scarred run is bit-identical, cell for
surviving cell, to an uninterrupted serial run.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import heapq
import json
import multiprocessing as mp
import os
import signal
import threading
import time
from collections import deque
from multiprocessing import connection
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .parallel import (
    ProgressFn,
    WarmSpec,
    _init_worker,
    _ProgressGate,
    pool_available,
    resolve_jobs,
)

#: Result codec: (encode to JSON-able payload, decode payload back).
Codec = Tuple[Callable[[Any], Any], Callable[[Any], Any]]


# ---------------------------------------------------------------------------
# Structured outcomes
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """A quarantined cell: all attempts failed; the sweep carried on.

    Occupies the cell's result slot, so aggregation code can skip it
    (``isinstance(cell, CellFailure)``) while every other cell keeps its
    position — the determinism contract of the surviving results.
    """

    index: int
    key: str
    kind: str  # "timeout" | "crash" | "error"
    attempts: int
    message: str

    def to_payload(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CellFailure":
        return cls(
            index=int(payload["index"]),
            key=str(payload["key"]),
            kind=str(payload["kind"]),
            attempts=int(payload["attempts"]),
            message=str(payload["message"]),
        )


class SweepInterrupted(RuntimeError):
    """The sweep was stopped by SIGINT/SIGTERM after a graceful drain."""

    def __init__(self, completed: int, total: int, journal: Optional[Path]):
        self.completed = completed
        self.total = total
        self.journal = journal
        hint = f"; resume with --resume (journal: {journal})" if journal else ""
        super().__init__(
            f"sweep interrupted after {completed}/{total} cells{hint}"
        )


@dataclasses.dataclass
class SweepReport:
    """Counters of one supervised run (fill by passing to run_supervised)."""

    total: int = 0
    completed: int = 0
    resumed: int = 0
    retried: int = 0
    failures: List[CellFailure] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class SupervisorConfig:
    """Knobs of :func:`run_supervised` (all optional)."""

    #: Seconds a single cell may run before its worker is killed
    #: (None = no timeout).  Enforced only on the pool path — a serial
    #: run cannot preempt its own cell.
    cell_timeout: Optional[float] = None
    #: Retries per cell before quarantine.
    max_retries: int = 2
    #: First retry delay in seconds; doubles per attempt.
    backoff_base: float = 0.05
    #: Ceiling on the backoff delay.
    backoff_cap: float = 2.0
    #: Checkpoint journal: a path or an (already managed) instance.
    journal: Optional[Union[str, Path, "CheckpointJournal"]] = None
    #: Replay completed cells from the journal instead of re-running.
    resume: bool = False
    #: Seconds in-flight cells may drain after SIGINT/SIGTERM.
    grace: float = 5.0
    #: Install SIGINT/SIGTERM handlers for graceful shutdown (skipped
    #: automatically off the main thread).
    handle_signals: bool = True
    #: Optional :class:`SweepReport` accumulating counters across every
    #: run that uses this config (counters add up, so one report can
    #: cover several drivers sharing one journal).
    report: Optional["SweepReport"] = None


# ---------------------------------------------------------------------------
# Content-hashed cell keys
# ---------------------------------------------------------------------------


def _canon(obj: Any) -> Any:
    """Canonical JSON-able form of a task descriptor (order-stable)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: _canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, enum.Enum):
        return _canon(obj.value)
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(
        f"task descriptor contains un-canonicalizable {type(obj).__name__}; "
        "checkpoint keys need plain data (tuples, dataclasses, primitives)"
    )


def cell_key(fn: Callable, task: Any) -> str:
    """Content hash identifying one (task function, task descriptor) cell.

    Stable across processes and sessions, so a resumed run maps journal
    records back to cells regardless of list position or worker count.
    """
    doc = {
        "fn": f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}",
        "task": _canon(task),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


class CheckpointJournal:
    """Append-only JSONL record of finished cells, safe against SIGKILL.

    Every record is flushed and fsynced as it is written; the loader
    skips corrupt or truncated lines (at most the final record can be
    torn by a crash), so any journal that exists is resumable.  One
    journal may serve several :func:`run_supervised` calls (e.g. the
    three figure drivers of ``repro figures``) — keys are content
    hashes, so records never collide across task lists.
    """

    MAGIC = "repro-checkpoint-v1"

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Key -> latest record; tolerant of torn/corrupt lines."""
        records: Dict[str, Dict[str, Any]] = {}
        try:
            text = self.path.read_text()
        except (FileNotFoundError, OSError):
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn final line from a crash mid-write
            if not isinstance(rec, dict):
                continue
            key = rec.get("key")
            if key:
                records[str(key)] = rec
        return records

    def open(self, fresh: bool = False) -> "CheckpointJournal":
        """Open for appending (``fresh`` starts a new journal). Idempotent."""
        if self._fh is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w" if fresh else "a")
        if fresh or self.path.stat().st_size == 0:
            self._write({"magic": self.MAGIC})
        return self

    def record(self, key: str, status: str, **fields: Any) -> None:
        """Append one cell outcome; durable before the call returns."""
        if self._fh is None:
            self.open()
        try:
            self._write({"key": key, "status": status, **fields})
        except TypeError:
            raise TypeError(
                "checkpoint payload is not JSON-serializable; pass a codec "
                "(encode/decode) to run_supervised for this result type"
            ) from None

    def _write(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(conn, fn: Callable, warm: Tuple[WarmSpec, ...]) -> None:
    """Worker loop: recv (index, task), send (index, status, payload).

    SIGINT is ignored so Ctrl-C in the parent's terminal (delivered to
    the whole foreground process group) does not kill workers mid-cell;
    the parent owns shutdown via the pipe (or SIGKILL on timeout).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _init_worker(warm)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        index, task = msg
        try:
            result = fn(task)
        except Exception as exc:
            conn.send((index, "error", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send((index, "ok", result))


class _Worker:
    """Parent-side handle of one supervised worker process."""

    def __init__(self, ctx, fn: Callable, warm: Tuple[WarmSpec, ...]):
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child, fn, warm), daemon=True
        )
        self.proc.start()
        child.close()
        #: (index, task, attempts) of the in-flight cell, or None.
        self.job: Optional[Tuple[int, Any, int]] = None
        #: Monotonic deadline of the in-flight cell (math.inf = none).
        self.deadline = float("inf")

    def assign(self, index: int, task: Any, attempts: int, timeout: Optional[float]):
        self.job = (index, task, attempts)
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else float("inf")
        )
        self.conn.send((index, task))

    def stop(self) -> None:
        """Ask the worker to exit after its current cell."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


def run_supervised(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    jobs: Optional[int] = 1,
    config: Optional[SupervisorConfig] = None,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    warm: Optional[Sequence[WarmSpec]] = None,
    codec: Optional[Codec] = None,
    report: Optional[SweepReport] = None,
) -> List[Any]:
    """Map ``fn`` over ``tasks`` under supervision.

    Same shape and determinism contract as
    :func:`repro.eval.parallel.run_tasks`, plus the robustness behaviour
    of :class:`SupervisorConfig`: results come back in task order, with
    quarantined cells replaced by :class:`CellFailure` instead of
    aborting.  ``codec=(encode, decode)`` converts results to/from the
    JSON payloads stored in the checkpoint journal (identity when the
    results are already plain JSON data).
    """
    cfg = config or SupervisorConfig()
    items = list(tasks)
    total = len(items)
    if report is None:
        report = cfg.report
    if report is not None:
        report.total += total
    if total == 0:
        return []
    encode, decode = codec if codec is not None else (lambda x: x, lambda x: x)

    # -- journal + resume prefill -------------------------------------------
    journal: Optional[CheckpointJournal] = None
    own_journal = False
    if cfg.journal is not None:
        if isinstance(cfg.journal, CheckpointJournal):
            journal = cfg.journal
        else:
            journal = CheckpointJournal(cfg.journal)
            own_journal = True
    keys = [cell_key(fn, task) for task in items] if journal is not None else None
    results: List[Any] = [_UNRESOLVED] * total
    resumed = 0
    if journal is not None and cfg.resume:
        seen = journal.load()
        for i, key in enumerate(keys):
            rec = seen.get(key)
            if rec is not None and rec.get("status") == "ok":
                results[i] = decode(rec.get("payload"))
                resumed += 1
    if journal is not None and not journal.is_open:
        journal.open(fresh=not cfg.resume)
    if report is not None:
        report.resumed += resumed

    gate = _ProgressGate(progress, total, log_every)
    gate.advance(resumed)
    todo = [i for i in range(total) if results[i] is _UNRESOLVED]

    # -- graceful signal shutdown -------------------------------------------
    interrupted: List[int] = []
    installed: List[Tuple[int, Any]] = []
    if cfg.handle_signals and threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            interrupted.append(signum)

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                installed.append((sig, signal.signal(sig, _on_signal)))
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _finish(index: int, value: Any, status: str, **fields: Any) -> None:
        results[index] = value
        gate.advance()
        if report is not None:
            report.completed += 1
            if isinstance(value, CellFailure):
                report.failures.append(value)
        if journal is not None:
            payload = value.to_payload() if isinstance(value, CellFailure) else encode(value)
            journal.record(keys[index], status, payload=payload, **fields)

    try:
        if todo:
            n_jobs = min(resolve_jobs(jobs), len(todo))
            if n_jobs == 1 or not pool_available():
                _run_serial(fn, items, todo, cfg, interrupted, _finish, report)
            else:
                _run_pool(
                    fn, items, todo, n_jobs, cfg, warm, interrupted, _finish, report
                )
        if interrupted:
            completed = sum(1 for r in results if r is not _UNRESOLVED)
            raise SweepInterrupted(
                completed, total, journal.path if journal is not None else None
            )
    finally:
        for sig, old in installed:
            signal.signal(sig, old)
        if journal is not None and own_journal:
            journal.close()
    return results


#: Placeholder marking result slots not yet produced (never returned).
_UNRESOLVED = object()


def _backoff_delay(cfg: SupervisorConfig, attempts: int) -> float:
    return min(cfg.backoff_cap, cfg.backoff_base * (2 ** max(attempts - 1, 0)))


def _run_serial(
    fn: Callable,
    items: Sequence[Any],
    todo: Sequence[int],
    cfg: SupervisorConfig,
    interrupted: List[int],
    finish: Callable,
    report: Optional[SweepReport],
) -> None:
    """In-process fallback: no preemption, but retries/quarantine/journal."""
    for index in todo:
        if interrupted:
            return
        attempts = 0
        while True:
            attempts += 1
            try:
                result = fn(items[index])
            except Exception as exc:
                if attempts > cfg.max_retries:
                    finish(
                        index,
                        CellFailure(
                            index,
                            cell_key(fn, items[index]),
                            "error",
                            attempts,
                            f"{type(exc).__name__}: {exc}",
                        ),
                        "failed",
                    )
                    break
                if report is not None:
                    report.retried += 1
                time.sleep(_backoff_delay(cfg, attempts))
            else:
                finish(index, result, "ok")
                break


def _run_pool(
    fn: Callable,
    items: Sequence[Any],
    todo: Sequence[int],
    n_jobs: int,
    cfg: SupervisorConfig,
    warm: Optional[Sequence[WarmSpec]],
    interrupted: List[int],
    finish: Callable,
    report: Optional[SweepReport],
) -> None:
    """Fork-pool path with timeouts, dead-worker respawn and backoff."""
    ctx = mp.get_context("fork")
    warm_t = tuple(warm or ())
    workers = [_Worker(ctx, fn, warm_t) for _ in range(n_jobs)]
    pending: deque = deque((i, items[i], 0) for i in todo)
    delayed: List[Tuple[float, int, Tuple[int, Any, int]]] = []
    seq = 0
    outstanding = len(todo)
    drain_deadline: Optional[float] = None

    def _retry_or_quarantine(index: int, task: Any, attempts: int, kind: str, msg: str):
        nonlocal seq, outstanding
        attempts += 1
        if attempts > cfg.max_retries:
            finish(
                index,
                CellFailure(index, cell_key(fn, task), kind, attempts, msg),
                "failed",
                kind=kind,
                attempts=attempts,
            )
            outstanding -= 1
        else:
            if report is not None:
                report.retried += 1
            seq += 1
            heapq.heappush(
                delayed,
                (time.monotonic() + _backoff_delay(cfg, attempts), seq, (index, task, attempts)),
            )

    def _replace(worker: _Worker) -> _Worker:
        worker.kill()
        fresh = _Worker(ctx, fn, warm_t)
        workers[workers.index(worker)] = fresh
        return fresh

    try:
        while outstanding > 0:
            now = time.monotonic()
            if interrupted and drain_deadline is None:
                drain_deadline = now + cfg.grace
            # Promote delayed retries whose backoff has elapsed.
            while delayed and delayed[0][0] <= now:
                pending.append(heapq.heappop(delayed)[2])
            # Dispatch to idle workers (not while draining an interrupt).
            if not interrupted:
                for w in workers:
                    if w.job is None and pending:
                        index, task, attempts = pending.popleft()
                        w.assign(index, task, attempts, cfg.cell_timeout)
            busy = [w for w in workers if w.job is not None]
            if interrupted:
                if not busy or now >= drain_deadline:
                    return  # journal is already flushed per record
            elif not busy:
                if pending:
                    continue
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - now))
                    continue
                return  # nothing outstanding anywhere (defensive)
            # Wait for results, bounded so deadlines/signals stay live.
            wait_until = min(
                [w.deadline for w in busy] or [now + 0.25],
            )
            if delayed:
                wait_until = min(wait_until, delayed[0][0])
            if drain_deadline is not None:
                wait_until = min(wait_until, drain_deadline)
            timeout = max(0.0, min(wait_until - now, 0.25))
            ready = connection.wait([w.conn for w in busy], timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                w = by_conn[conn]
                index, task, attempts = w.job
                try:
                    got_index, status, payload = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-cell (os._exit, OOM kill, segfault).
                    _replace(w)
                    _retry_or_quarantine(
                        index, task, attempts, "crash",
                        f"worker exited (code {w.proc.exitcode})",
                    )
                    continue
                w.job = None
                w.deadline = float("inf")
                assert got_index == index, "worker answered the wrong cell"
                if status == "ok":
                    finish(index, payload, "ok")
                    outstanding -= 1
                else:
                    _retry_or_quarantine(index, task, attempts, "error", payload)
            # Enforce per-cell deadlines on workers that stayed silent.
            if cfg.cell_timeout is not None:
                now = time.monotonic()
                for w in list(workers):
                    if w.job is not None and now >= w.deadline:
                        index, task, attempts = w.job
                        _replace(w)
                        _retry_or_quarantine(
                            index, task, attempts, "timeout",
                            f"cell exceeded {cfg.cell_timeout:.3g}s",
                        )
    finally:
        for w in workers:
            if w.job is None and w.proc.is_alive():
                w.stop()
        for w in workers:
            if w.job is not None:
                w.kill()  # interrupted mid-cell or supervisor error
            else:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():  # pragma: no cover
                    w.kill()
