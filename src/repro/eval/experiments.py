"""One driver per table/figure of the paper's evaluation (section 5).

Each function regenerates the rows/series of its figure and returns a
plain dict mapping labels to measured values, together with the paper's
headline number(s) where the text states them, so benches and
EXPERIMENTS.md can print paper-vs-measured side by side.

Per-benchmark drivers accept ``jobs`` (default 1 = serial): the
independent benchmark/thread-count cells run on the process pool of
:mod:`repro.eval.parallel`, with results aggregated in a fixed order so
the output is bit-identical to a serial run for any worker count.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.fixed import dispatch_fixed, useful_data_fraction
from repro.cache.hierarchy import CacheHierarchy
from repro.core.config import MACConfig, PAPER_SYSTEM
from repro.trace.record import TraceRecord
from repro.workloads.registry import BENCHMARKS, benchmark_names

from . import metrics
from .area import mac_area
from .parallel import ProgressFn, run_tasks
from .supervisor import CellFailure
from .runner import (
    DEFAULT_OPS_PER_THREAD,
    DEFAULT_THREADS,
    cached_trace,
    compare_policies,
    dispatch,
)

# ---------------------------------------------------------------------------
# Picklable per-cell workers for the parallel figure drivers
# ---------------------------------------------------------------------------


def _mac_cell(task: Tuple) -> Dict[str, Any]:
    """(name, threads, ops, config_kwargs) -> window-engine stat scalars.

    Runs in pool workers: returns only small plain values, never packets
    or devices, so results pickle cheaply.
    """
    name, threads, ops_per_thread, config_kwargs = task
    cfg = MACConfig(**dict(config_kwargs)) if config_kwargs else None
    st = dispatch(name, "mac", threads, ops_per_thread, config=cfg).stats
    return {
        "efficiency": st.coalescing_efficiency,
        "bandwidth_efficiency": st.coalesced_bandwidth_efficiency,
        "avg_targets": st.avg_targets_per_packet,
        "max_targets": st.max_targets_per_packet,
        "saved_bytes": float(st.bandwidth_saved_bytes()),
        "wire_saved_bytes": float(st.wire_saved_bytes()),
        "raw_requests": st.memory_raw_requests,
    }


def _compare_cell(task: Tuple) -> Dict[str, Any]:
    """(name, threads, ops) -> raw-vs-MAC device replay scalars."""
    name, threads, ops_per_thread = task
    res = compare_policies(name, threads, ops_per_thread)
    raw, mac = res["raw"], res["mac"]
    return {
        "raw_conflicts": raw.bank_conflicts,
        "mac_conflicts": mac.bank_conflicts,
        "raw_makespan": raw.makespan,
        "mac_makespan": mac.makespan,
        "raw_latency": raw.mean_latency,
        "mac_latency": mac.mean_latency,
    }

def _closed_loop_cell(task: Tuple) -> Dict[str, Any]:
    """(name, threads, ops, engine) -> closed-loop node run scalars.

    ``engine`` travels as a name string (``"lockstep"`` / ``"skip"``) so
    the task tuple stays picklable for the process pool; both engines
    produce bit-identical results, so the choice only affects wall time.
    """
    from .runner import attributed_node_run

    name, threads, ops_per_thread, engine = task
    _, node = attributed_node_run(
        name, threads, ops_per_thread, engine=engine
    )
    return {
        "cycles": node.stats.cycles,
        "mean_memory_latency": node.stats.mean_memory_latency,
        "responses": node.stats.responses_delivered,
        "coalescing_efficiency": node.stats.coalescing_efficiency,
    }


def closed_loop_summary(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = 1000,
    engine: Optional[str] = None,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    supervise=None,
) -> Dict[str, Dict[str, Any]]:
    """Closed-loop Fig. 4 node run per benchmark (end-to-end numbers).

    Unlike the open-loop figure drivers above, this clocks the full
    cores -> MAC -> device -> response loop, so makespan includes the
    latency-bound phases the skip engine fast-forwards.  ``engine``
    selects the simulation engine by name (see :mod:`repro.sim`).
    """
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread, engine) for name in names]
    cells = run_tasks(
        _closed_loop_cell, tasks, jobs=jobs, progress=progress, supervise=supervise
    )
    return {
        name: cell
        for name, cell in zip(names, cells)
        if not isinstance(cell, CellFailure)
    }


# ---------------------------------------------------------------------------
# Figure 1 — cache miss-rate analysis
# ---------------------------------------------------------------------------


def _missrate_cell(task: Tuple) -> float:
    """(name, threads, ops, l1, llc, prefetch) -> LLC miss rate."""
    name, threads, ops_per_thread, l1_bytes, llc_bytes, prefetch = task
    from repro.workloads.registry import make as make_wl

    if name == "SG":
        wl = make_wl("SG", hot_frac=0.0)
        trace: Sequence[TraceRecord] = wl.generate(
            threads=threads, ops_per_thread=ops_per_thread
        )
    else:
        trace = cached_trace(name, threads, ops_per_thread)
    hier = CacheHierarchy(
        cores=threads, l1_bytes=l1_bytes, llc_bytes=llc_bytes, prefetch=prefetch
    )
    hier.run_trace(trace)
    return hier.stats.miss_rate


def fig1_benchmark_missrates(
    names: Optional[Sequence[str]] = None,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = 2000,
    l1_bytes: int = 4 << 10,
    llc_bytes: int = 64 << 10,
    prefetch: bool = False,
    jobs: int = 1,
) -> Dict[str, float]:
    """Fig. 1 (left): LLC-to-memory miss rate per benchmark.

    Paper: average 49.09 %, with SG and HPCG above 50 %.  The cache
    capacities default ~250x below the paper's because the traces are
    ~1000x shorter than the paper's full-benchmark runs; the ratio of
    working set to cache capacity — which determines the miss rate —
    is thereby preserved (DESIGN.md substitution 3).

    The cache study replays the benchmarks as a conventional cache-based
    processor would run them: SG uses uniform-random gathers (the
    section 2.1 definition: "C[i] is a random positive integer").
    """
    bench = list(names or benchmark_names())
    tasks = [
        (name, threads, ops_per_thread, l1_bytes, llc_bytes, prefetch)
        for name in bench
    ]
    rates = run_tasks(_missrate_cell, tasks, jobs=jobs)
    return dict(zip(bench, rates))


def fig1_seq_vs_random(
    dataset_bytes: Sequence[int] = tuple(
        int(80e3 * 4**i) for i in range(10)  # 80 KB ... ~21 GB, + 32 GB
    )
    + (32 << 30,),
    accesses: int = 60_000,
    seed: int = 2019,
) -> Dict[int, Tuple[float, float]]:
    """Fig. 1 (right): miss rate of ``A[i]=B[i]`` vs ``A[i]=B[C[i]]``.

    Returns {dataset bytes: (sequential, random)} miss rates.  Paper:
    sequential stays <= 2.36 %, random grows 3.12 % -> 63.85 % at 32 GB.
    The cache is tag-only, so 32 GB datasets simulate in MBs of state.
    """
    rng = np.random.default_rng(seed)
    out: Dict[int, Tuple[float, float]] = {}
    for size in dataset_bytes:
        elements = max(size // 8, 1)
        # Sequential: stream B and A with unit stride.
        hier_seq = CacheHierarchy(cores=1)
        base_b, base_a = 1 << 32, 2 << 40
        n = accesses // 2
        for i in range(n):
            idx = i % elements
            hier_seq.access(0, base_b + idx * 8)
            hier_seq.access(0, base_a + idx * 8)
        # Random: gather B at uniform random C[i] (C itself streams and
        # is prefetched; the gather is the measured behaviour).
        hier_rnd = CacheHierarchy(cores=1)
        gathers = rng.integers(0, elements, size=n)
        for i in range(n):
            hier_rnd.access(0, base_b + int(gathers[i]) * 8)
            hier_rnd.access(0, base_a + (i % elements) * 8)
        out[size] = (hier_seq.stats.miss_rate, hier_rnd.stats.miss_rate)
    return out


# ---------------------------------------------------------------------------
# Figure 3 — analytic bandwidth efficiency vs request size
# ---------------------------------------------------------------------------


def fig3_bandwidth_efficiency(
    sizes: Sequence[int] = metrics.HMC_REQUEST_SIZES,
) -> Dict[int, Tuple[float, float]]:
    """Fig. 3: {size: (efficiency, overhead)}.

    Paper anchors: 16 B -> (33.33 %, 66.66 %); 256 B -> (88.89 %, 11.11 %).
    """
    return {
        s: (metrics.bandwidth_efficiency(s), metrics.control_overhead_fraction(s))
        for s in sizes
    }


# ---------------------------------------------------------------------------
# Figure 9 — raw requests per cycle (Eq. 2)
# ---------------------------------------------------------------------------


def fig9_requests_per_cycle(cores: int = 8) -> Dict[str, float]:
    """Fig. 9: RPC per benchmark; paper: all > 2, up to 9.32."""
    out: Dict[str, float] = {}
    for name, cls in BENCHMARKS.items():
        p = cls.profile
        out[name] = metrics.requests_per_cycle(p.ipc, p.rpi, cores, p.mem_access_rate)
    return out


# ---------------------------------------------------------------------------
# Figure 10 — coalescing efficiency per benchmark and thread count
# ---------------------------------------------------------------------------


def fig10_coalescing_efficiency(
    thread_counts: Sequence[int] = (2, 4, 8),
    total_ops: int = 24_000,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    supervise=None,
) -> Dict[int, Dict[str, float]]:
    """Fig. 10: {threads: {benchmark: efficiency}}.

    Paper: averages 48.37 / 50.51 / 52.86 % for 2/4/8 threads; >60 % for
    MG, GRAPPOLO, SG, SP and SPARSELU at 8 threads.  Under a supervised
    run (``supervise``), quarantined cells are simply absent from the
    inner dicts.
    """
    names = benchmark_names()
    tasks = [
        (name, t, total_ops // t, ()) for t in thread_counts for name in names
    ]
    cells = run_tasks(
        _mac_cell, tasks, jobs=jobs, progress=progress, log_every=log_every,
        supervise=supervise,
    )
    out: Dict[int, Dict[str, float]] = {t: {} for t in thread_counts}
    for (name, t, _ops, _cfg), cell in zip(tasks, cells):
        if isinstance(cell, CellFailure):
            continue
        out[t][name] = cell["efficiency"]
    return out


# ---------------------------------------------------------------------------
# Figure 11 — ARQ size sweep
# ---------------------------------------------------------------------------


def fig11_arq_sweep(
    entries: Sequence[int] = (8, 16, 32, 64, 128, 256),
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    supervise=None,
) -> Dict[int, float]:
    """Fig. 11: suite-average efficiency per ARQ entry count.

    Paper: 37.58 % -> 56.04 % from 8 to 256 entries with diminishing
    returns (+22.11 / +15.72 / +5.53 % relative at 16/32/64).  Under a
    supervised run, each entry count averages over its surviving cells;
    an entry count whose cells all quarantined is omitted.
    """
    names = benchmark_names()
    tasks = [
        (name, threads, ops_per_thread, (("arq_entries", n),))
        for n in entries
        for name in names
    ]
    cells = run_tasks(
        _mac_cell, tasks, jobs=jobs, progress=progress, log_every=log_every,
        supervise=supervise,
    )
    acc: Dict[int, list] = {n: [] for n in entries}
    for (_name, _th, _ops, cfg), cell in zip(tasks, cells):
        if isinstance(cell, CellFailure):
            continue
        acc[dict(cfg)["arq_entries"]].append(cell["efficiency"])
    return {n: statistics.mean(vals) for n, vals in acc.items() if vals}


# ---------------------------------------------------------------------------
# Figure 12 — bank-conflict reduction
# ---------------------------------------------------------------------------


def fig12_bank_conflicts(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    supervise=None,
) -> Dict[str, Tuple[int, int]]:
    """Fig. 12: {benchmark: (conflicts without MAC, with MAC)}.

    The paper reports absolute reductions at its (much larger) trace
    scale — avg ~644 M per benchmark; the *shape* to match is that every
    benchmark reduces conflicts, most dramatically the high-locality
    ones (NQUEENS, SP).
    """
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread) for name in names]
    cells = run_tasks(
        _compare_cell, tasks, jobs=jobs, progress=progress, log_every=log_every,
        supervise=supervise,
    )
    return {
        name: (cell["raw_conflicts"], cell["mac_conflicts"])
        for name, cell in zip(names, cells)
        if not isinstance(cell, CellFailure)
    }


# ---------------------------------------------------------------------------
# Figure 13 — bandwidth efficiency of coalesced vs raw traffic
# ---------------------------------------------------------------------------


def fig13_bandwidth_efficiency(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
) -> Dict[str, float]:
    """Fig. 13: per-benchmark coalesced bandwidth efficiency.

    Raw 16 B traffic is 33.33 % by construction; paper average for
    coalesced traffic is 70.35 %.
    """
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread, ()) for name in names]
    cells = run_tasks(_mac_cell, tasks, jobs=jobs)
    return {
        name: cell["bandwidth_efficiency"] for name, cell in zip(names, cells)
    }


# ---------------------------------------------------------------------------
# Figure 14 — bandwidth saved
# ---------------------------------------------------------------------------


def fig14_bandwidth_saving(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Fig. 14: control bytes saved by aggregation per benchmark.

    Returns Fig. 14's control-only saving (32 B per eliminated request),
    absolute at our trace scale and per raw request (scale-free), plus
    the net-wire saving that additionally charges overfetched payload.
    Paper: 22.76 GB average at paper-scale traces.
    """
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread, ()) for name in names]
    cells = run_tasks(_mac_cell, tasks, jobs=jobs)
    out: Dict[str, Dict[str, float]] = {}
    for name, cell in zip(names, cells):
        raw_n = cell["raw_requests"]
        out[name] = {
            "saved_bytes": cell["saved_bytes"],
            "saved_bytes_per_request": cell["saved_bytes"] / raw_n if raw_n else 0.0,
            "wire_saved_bytes_per_request": (
                cell["wire_saved_bytes"] / raw_n if raw_n else 0.0
            ),
        }
    return out


# ---------------------------------------------------------------------------
# Figure 15 — targets per ARQ entry
# ---------------------------------------------------------------------------


def fig15_targets_per_entry(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
) -> Dict[str, Tuple[float, int]]:
    """Fig. 15: {benchmark: (avg targets/packet, max)}.

    Paper: average 2.13, maximum 3.14, hardware limit 12.
    """
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread, ()) for name in names]
    cells = run_tasks(_mac_cell, tasks, jobs=jobs)
    return {
        name: (cell["avg_targets"], cell["max_targets"])
        for name, cell in zip(names, cells)
    }


# ---------------------------------------------------------------------------
# Figure 16 — space overhead
# ---------------------------------------------------------------------------


def fig16_space_overhead(
    entries: Sequence[int] = (8, 16, 32, 64, 128, 256),
) -> Dict[int, int]:
    """Fig. 16: ARQ bytes per entry count; paper: 512 B -> 16 KB, and
    2062 B total for the 32-entry MAC."""
    return {n: mac_area(MACConfig(arq_entries=n)).arq_bytes for n in entries}


# ---------------------------------------------------------------------------
# Figure 17 — memory-system speedup
# ---------------------------------------------------------------------------


def fig17_speedup(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    supervise=None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 17: per-benchmark memory-system latency reduction.

    The paper replays each transaction stream through HMCSim with and
    without MAC and reports the latency reduction: 60.73 % on average,
    >70 % for MG, GRAPPOLO, SG and SPARSELU.  We report both makespan
    and mean-latency reductions.
    """
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread) for name in names]
    cells = run_tasks(
        _compare_cell, tasks, jobs=jobs, progress=progress, log_every=log_every,
        supervise=supervise,
    )
    return {
        name: {
            "makespan_speedup": metrics.speedup(
                cell["raw_makespan"], cell["mac_makespan"]
            ),
            "latency_speedup": metrics.speedup(
                max(cell["raw_latency"], 1e-9), cell["mac_latency"]
            ),
        }
        for name, cell in zip(names, cells)
        if not isinstance(cell, CellFailure)
    }


# ---------------------------------------------------------------------------
# Table 1 — configuration validation
# ---------------------------------------------------------------------------


def table1_config() -> Dict[str, object]:
    """Table 1 as realized by this library's default configuration."""
    sysc = PAPER_SYSTEM
    return {
        "ISA": "RV64IMAFDC (trace-level)",
        "cores": sysc.cores,
        "cpu_freq_ghz": sysc.cpu_freq_ghz,
        "spm_bytes_per_core": sysc.spm_bytes,
        "spm_latency_ns": sysc.spm_latency_ns,
        "hmc_links": sysc.hmc_links,
        "hmc_capacity_gb": sysc.hmc_capacity_gb,
        "hmc_row_bytes": sysc.mac.row_bytes,
        "hmc_latency_ns": sysc.hmc_latency_ns,
        "arq_entries": sysc.mac.arq_entries,
        "arq_entry_bytes": sysc.mac.arq_entry_bytes,
    }


# ---------------------------------------------------------------------------
# Ablation — section 2.3.2's fixed-256 B strawman
# ---------------------------------------------------------------------------


def _ablation_cell(task: Tuple) -> Dict[str, float]:
    """(name, threads, ops) -> fixed-256 B vs MAC efficiency scalars."""
    from repro.core.stats import MACStats
    from repro.trace.record import to_requests

    name, threads, ops_per_thread = task
    trace = cached_trace(name, threads, ops_per_thread)
    st = MACStats()
    pkts = dispatch_fixed(list(to_requests(trace)), stats=st)
    mac_res = dispatch(name, "mac", threads, ops_per_thread)
    return {
        "fixed_bandwidth_eff": st.coalesced_bandwidth_efficiency,
        "fixed_useful_fraction": useful_data_fraction(pkts),
        "mac_bandwidth_eff": mac_res.stats.coalesced_bandwidth_efficiency,
        "mac_useful_fraction": useful_data_fraction(mac_res.packets),
    }


def ablation_fixed_256(
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Quantifies section 2.3.2: always-256 B packets look great on
    Eq. 1 but waste most of the transferred data on irregular traffic."""
    names = benchmark_names()
    tasks = [(name, threads, ops_per_thread) for name in names]
    cells = run_tasks(_ablation_cell, tasks, jobs=jobs)
    return dict(zip(names, cells))


# ---------------------------------------------------------------------------
# Sharded NUMA scaling (conservative PDES, see repro.sim.pdes)
# ---------------------------------------------------------------------------


def numa_scaling(
    name: str = "GUPS",
    nodes: int = 64,
    threads: int = 1,
    ops_per_thread: int = 60,
    shard_counts: Sequence[int] = (1, 4),
    interconnect_latency: int = 120,
    interleave_bytes: int = 1 << 10,
) -> Dict[str, Any]:
    """Serial-vs-sharded mesh run: wall times, speedups, identity check.

    Runs the same ``nodes``-node mesh once per entry of
    ``shard_counts`` (1 = serial reference) and reports per-count wall
    time and speedup plus ``identical``: whether every run produced the
    same cycle count and the same full metrics dict — the PDES
    bit-identity contract measured end to end.
    """
    import time

    from .runner import numa_closed_loop

    runs: Dict[int, Dict[str, Any]] = {}
    reference = None
    identical = True
    for shards in shard_counts:
        t0 = time.perf_counter()
        system = numa_closed_loop(
            name,
            nodes=nodes,
            threads=threads,
            ops_per_thread=ops_per_thread,
            interconnect_latency=interconnect_latency,
            interleave_bytes=interleave_bytes,
            shards=shards,
        )
        wall = time.perf_counter() - t0
        outcome = (system.cycle, system.metrics())
        if reference is None:
            reference = outcome
        elif outcome != reference:
            identical = False
        report = system.shard_report
        runs[shards] = {
            "wall_s": wall,
            "cycles": system.cycle,
            "windows": report.windows if report else 0,
            "sharded": report is not None,
        }
    base = runs[shard_counts[0]]["wall_s"]
    for cell in runs.values():
        cell["speedup"] = base / cell["wall_s"] if cell["wall_s"] else 0.0
    return {
        "benchmark": name,
        "nodes": nodes,
        "identical": identical,
        "runs": runs,
    }


# ---------------------------------------------------------------------------
# Intra-cube NoC topology and DRAM page-policy axes (repro.hmc.noc / .bank)
# ---------------------------------------------------------------------------


def noc_topology_study(
    topologies: Sequence[str] = ("ideal", "xbar", "ring", "mesh"),
    packet_sizes: Sequence[int] = (64, 128, 256),
    workloads: Sequence[str] = ("GUPS", "SG"),
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
) -> List:
    """NoC topology x MAC packet-size grid (Hadidi et al.'s axis).

    The MAC's packet-size choice and the intra-cube interconnect
    interact: bigger packets serialize longer at a NoC port, so a
    saturated xbar/ring/mesh penalizes them where the ideal switch is
    indifferent.  Returns :class:`repro.eval.sweeps.DeviceSweepPoint`
    cells; render with :func:`repro.eval.sweeps.format_device_sweep`.
    """
    from .sweeps import sweep_device_grid

    return sweep_device_grid(
        {"noc_topology": list(topologies)},
        mac_axes={"max_request_bytes": list(packet_sizes)},
        workloads=workloads,
        threads=threads,
        ops_per_thread=ops_per_thread,
        jobs=jobs,
    )


def page_policy_study(
    policies: Sequence[str] = ("closed", "open", "adaptive"),
    workloads: Sequence[str] = ("GUPS", "SG", "MG"),
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    jobs: int = 1,
) -> List:
    """Live page-policy comparison on the real device model.

    Replays each workload's coalesced stream under every bank page
    policy (section 2.2.1's argument, now measured in-simulator instead
    of on the offline DDR replica): closed pays activate every access,
    open harvests row hits but eats ``t_precharge`` on misses, adaptive
    hedges with a per-bank hit-confidence counter.  Returns
    :class:`repro.eval.sweeps.DeviceSweepPoint` cells.
    """
    from .sweeps import sweep_device_grid

    return sweep_device_grid(
        {"page_policy": list(policies)},
        workloads=workloads,
        threads=threads,
        ops_per_thread=ops_per_thread,
        jobs=jobs,
    )
