"""Configuration and result serialization (JSON) for reproducible runs.

Experiments are parameterized by frozen dataclass configs; this module
round-trips them (and the stats objects results come back in) through
plain dicts/JSON so runs can be archived and replayed exactly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, TypeVar, Union

from repro.core.config import MACConfig, SystemConfig
from repro.core.stats import MACStats
from repro.ddr.device import DDRConfig
from repro.ddr.timing import DDRTiming
from repro.hbm.config import HBMConfig
from repro.hbm.timing import HBMTiming
from repro.hmc.config import HMCConfig
from repro.hmc.timing import HMCTiming

T = TypeVar("T")

#: Registry of serializable config types, keyed by their class name.
CONFIG_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        MACConfig,
        SystemConfig,
        HMCConfig,
        HMCTiming,
        HBMConfig,
        HBMTiming,
        DDRConfig,
        DDRTiming,
    )
}


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Dataclass config -> tagged plain dict (nested configs recurse)."""
    if type(config).__name__ not in CONFIG_TYPES:
        raise TypeError(f"{type(config).__name__} is not a registered config type")
    out: Dict[str, Any] = {"__type__": type(config).__name__}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if type(value).__name__ in CONFIG_TYPES:
            value = config_to_dict(value)
        out[f.name] = value
    return out


def config_from_dict(data: Dict[str, Any]) -> Any:
    """Tagged dict -> config instance (validates via __post_init__)."""
    data = dict(data)
    name = data.pop("__type__", None)
    if name is None or name not in CONFIG_TYPES:
        raise ValueError(f"not a serialized config: missing/unknown __type__ {name!r}")
    kwargs = {}
    for key, value in data.items():
        if isinstance(value, dict) and "__type__" in value:
            value = config_from_dict(value)
        kwargs[key] = value
    return CONFIG_TYPES[name](**kwargs)


def save_config(config: Any, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: Union[str, Path]) -> Any:
    return config_from_dict(json.loads(Path(path).read_text()))


def stats_to_dict(stats: MACStats) -> Dict[str, Any]:
    """MACStats -> plain dict including the derived metrics."""
    return {
        "raw_requests": stats.raw_requests,
        "raw_loads": stats.raw_loads,
        "raw_stores": stats.raw_stores,
        "raw_fences": stats.raw_fences,
        "raw_atomics": stats.raw_atomics,
        "coalesced_packets": stats.coalesced_packets,
        "bypassed_packets": stats.bypassed_packets,
        "packet_sizes": dict(stats.packet_sizes),
        "coalescing_efficiency": stats.coalescing_efficiency,
        "avg_targets_per_packet": stats.avg_targets_per_packet,
        "max_targets_per_packet": stats.max_targets_per_packet,
        "bandwidth_efficiency": stats.coalesced_bandwidth_efficiency,
        "control_saved_bytes": stats.bandwidth_saved_bytes(),
        "wire_saved_bytes": stats.wire_saved_bytes(),
    }
