"""Grid parameter sweeps over MAC configurations.

A small design-space-exploration utility: declare axes (MACConfig field
-> list of values), run every combination of the grid over one or more
workload traces through the window engine, and get a tidy result table
back.  Used by the design-space example and handy for ad-hoc studies::

    results = sweep_grid(
        {"arq_entries": [8, 32, 128], "row_bytes": [256, 1024]},
        workloads=("MG", "IS"),
        jobs=4,            # process-pool execution, bit-identical to jobs=1
    )
    print(format_sweep(results))

With ``jobs > 1`` the grid cells run on a process pool
(:mod:`repro.eval.parallel`); results are returned in grid order and are
element-for-element identical to the serial run — every cell is seeded
explicitly and generates its trace independently of scheduling.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.hmc.config import HMCConfig
from repro.seeding import DEFAULT_SEED
from repro.trace.record import to_requests

from .parallel import ProgressFn, run_tasks
from .report import format_table
from .runner import cached_trace

_VALID_FIELDS = {f.name for f in dataclasses.fields(MACConfig)}

#: HMCConfig fields a device sweep may vary (the scenario axes the NoC
#: and page-policy refactor opened, plus the cube geometry knobs).
_VALID_DEVICE_FIELDS = {
    "noc_topology",
    "noc_buffers",
    "noc_arbitration",
    "page_policy",
    "links",
    "vaults",
    "banks_per_vault",
}


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome for one workload."""

    params: Tuple[Tuple[str, Any], ...]
    workload: str
    efficiency: float
    packets: int
    bandwidth_efficiency: float
    avg_targets: float

    def param(self, name: str) -> Any:
        return dict(self.params)[name]


@dataclasses.dataclass(frozen=True)
class _SweepTask:
    """Picklable descriptor of one grid cell x workload evaluation."""

    params: Tuple[Tuple[str, Any], ...]
    config_kwargs: Tuple[Tuple[str, Any], ...]
    workload: str
    threads: int
    ops_per_thread: int
    seed: int
    policy: str


def _run_sweep_task(task: _SweepTask) -> SweepPoint:
    """Evaluate one grid cell (runs in-process or in a pool worker)."""
    cfg = MACConfig(**dict(task.config_kwargs))
    trace = cached_trace(task.workload, task.threads, task.ops_per_thread, task.seed)
    stats = MACStats()
    coalesce_trace_fast(
        list(to_requests(trace)), cfg, FlitTablePolicy(task.policy), stats
    )
    return SweepPoint(
        params=task.params,
        workload=task.workload,
        efficiency=stats.coalescing_efficiency,
        packets=stats.coalesced_packets,
        bandwidth_efficiency=stats.coalesced_bandwidth_efficiency,
        avg_targets=stats.avg_targets_per_packet,
    )


def _encode_sweep_point(point: SweepPoint) -> Dict[str, Any]:
    """SweepPoint -> JSON payload for the supervisor checkpoint journal."""
    return {
        "params": [[k, v] for k, v in point.params],
        "workload": point.workload,
        "efficiency": point.efficiency,
        "packets": point.packets,
        "bandwidth_efficiency": point.bandwidth_efficiency,
        "avg_targets": point.avg_targets,
    }


def _decode_sweep_point(payload: Dict[str, Any]) -> SweepPoint:
    """Inverse of :func:`_encode_sweep_point` (exact: JSON floats round-trip)."""
    return SweepPoint(
        params=tuple((k, v) for k, v in payload["params"]),
        workload=payload["workload"],
        efficiency=payload["efficiency"],
        packets=payload["packets"],
        bandwidth_efficiency=payload["bandwidth_efficiency"],
        avg_targets=payload["avg_targets"],
    )


#: Codec for running sweeps under the supervisor's checkpoint journal.
SWEEP_POINT_CODEC = (_encode_sweep_point, _decode_sweep_point)


def sweep_grid(
    axes: Dict[str, Sequence[Any]],
    workloads: Sequence[str] = ("SG",),
    threads: int = 4,
    ops_per_thread: int = 1000,
    base: Optional[MACConfig] = None,
    policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
    supervise=None,
) -> List[SweepPoint]:
    """Run the full cartesian grid; returns one SweepPoint per cell.

    ``jobs`` > 1 distributes cells over a process pool; the returned list
    is bit-identical (same order, same values) to the serial run.
    ``progress(done, total)`` is invoked every ``log_every`` completed
    cells when given.  ``supervise`` (a
    :class:`repro.eval.supervisor.SupervisorConfig`) runs the grid under
    the crash-resilient supervisor: quarantined cells come back as
    :class:`repro.eval.supervisor.CellFailure` entries in the list, and
    a checkpoint journal makes interrupted sweeps resumable.
    """
    if not axes:
        raise ValueError("need at least one sweep axis")
    unknown = set(axes) - _VALID_FIELDS
    if unknown:
        raise ValueError(f"unknown MACConfig fields: {sorted(unknown)}")
    base_kwargs = (
        {f.name: getattr(base, f.name) for f in dataclasses.fields(MACConfig)}
        if base is not None
        else {}
    )
    names = list(axes)
    tasks: List[_SweepTask] = []
    for combo in itertools.product(*(axes[n] for n in names)):
        kwargs = dict(base_kwargs)
        kwargs.update(dict(zip(names, combo)))
        # Dependent-field coupling: when only the row size moves, shrink
        # max_request_bytes just enough to stay valid (requests may not
        # exceed one row).  An explicitly smaller base value — e.g.
        # ``base=MACConfig(max_request_bytes=64)`` under a 1024 B row —
        # is a deliberate design point and is preserved.
        if "row_bytes" in kwargs and "max_request_bytes" not in axes:
            current = kwargs.get("max_request_bytes", 256)
            if current > kwargs["row_bytes"]:
                kwargs["max_request_bytes"] = kwargs["row_bytes"]
        MACConfig(**kwargs)  # validate once, in the parent, fail fast
        for name in workloads:
            tasks.append(
                _SweepTask(
                    params=tuple(zip(names, combo)),
                    config_kwargs=tuple(sorted(kwargs.items())),
                    workload=name,
                    threads=threads,
                    ops_per_thread=ops_per_thread,
                    seed=seed,
                    policy=policy.value,
                )
            )
    warm = sorted({(t.workload, t.threads, t.ops_per_thread, t.seed) for t in tasks})
    return run_tasks(
        _run_sweep_task,
        tasks,
        jobs=jobs,
        progress=progress,
        log_every=log_every,
        warm=warm,
        supervise=supervise,
        codec=SWEEP_POINT_CODEC,
    )


@dataclasses.dataclass(frozen=True)
class DeviceSweepPoint:
    """One device grid point's replay outcome for one workload."""

    params: Tuple[Tuple[str, Any], ...]
    workload: str
    mean_latency: float
    makespan: int
    bank_conflicts: int
    row_hit_rate: float
    noc_contention_cycles: int

    def param(self, name: str) -> Any:
        return dict(self.params)[name]


@dataclasses.dataclass(frozen=True)
class _DeviceSweepTask:
    """Picklable descriptor of one device cell x workload evaluation."""

    params: Tuple[Tuple[str, Any], ...]
    device_kwargs: Tuple[Tuple[str, Any], ...]
    mac_kwargs: Tuple[Tuple[str, Any], ...]
    workload: str
    threads: int
    ops_per_thread: int
    seed: int
    policy: str


def _run_device_sweep_task(task: _DeviceSweepTask) -> DeviceSweepPoint:
    """Evaluate one device cell (runs in-process or in a pool worker)."""
    from .runner import replay_on_device

    mac_cfg = MACConfig(**dict(task.mac_kwargs)) if task.mac_kwargs else None
    hmc_cfg = HMCConfig(**dict(task.device_kwargs))
    trace = cached_trace(task.workload, task.threads, task.ops_per_thread, task.seed)
    stats = MACStats()
    packets = coalesce_trace_fast(
        list(to_requests(trace)), mac_cfg, FlitTablePolicy(task.policy), stats
    )
    replay = replay_on_device(packets, hmc=hmc_cfg)
    dev = replay.device
    accesses = sum(v.bank_accesses for v in dev.vaults)
    noc = dev.noc.stats
    return DeviceSweepPoint(
        params=task.params,
        workload=task.workload,
        mean_latency=replay.mean_latency,
        makespan=replay.makespan,
        bank_conflicts=replay.bank_conflicts,
        row_hit_rate=(dev.row_hits / accesses) if accesses else 0.0,
        noc_contention_cycles=noc.contention_cycles + noc.buffer_stall_cycles,
    )


def sweep_device_grid(
    device_axes: Dict[str, Sequence[Any]],
    mac_axes: Optional[Dict[str, Sequence[Any]]] = None,
    workloads: Sequence[str] = ("SG",),
    threads: int = 4,
    ops_per_thread: int = 1000,
    policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    log_every: int = 1,
) -> List[DeviceSweepPoint]:
    """Sweep HMC device knobs (optionally crossed with MAC knobs).

    The device-side sibling of :func:`sweep_grid`: ``device_axes`` maps
    :class:`~repro.hmc.config.HMCConfig` fields (NoC topology, buffer
    depth, arbitration, page policy, geometry) to value lists, and
    ``mac_axes`` optionally crosses in MAC knobs — the canonical use is
    the NoC-topology x packet-size grid::

        points = sweep_device_grid(
            {"noc_topology": ["ideal", "xbar", "ring"]},
            mac_axes={"max_request_bytes": [64, 128, 256]},
        )

    Every cell coalesces the workload trace once and replays it on a
    fresh device built from the cell's config; cells are independent,
    explicitly seeded, and ``jobs > 1`` distributes them bit-identically
    over a process pool.
    """
    if not device_axes:
        raise ValueError("need at least one device sweep axis")
    unknown = set(device_axes) - _VALID_DEVICE_FIELDS
    if unknown:
        raise ValueError(f"unknown/unsupported HMCConfig fields: {sorted(unknown)}")
    mac_axes = mac_axes or {}
    unknown = set(mac_axes) - _VALID_FIELDS
    if unknown:
        raise ValueError(f"unknown MACConfig fields: {sorted(unknown)}")
    dev_names = list(device_axes)
    mac_names = list(mac_axes)
    tasks: List[_DeviceSweepTask] = []
    for dev_combo in itertools.product(*(device_axes[n] for n in dev_names)):
        dev_kwargs = dict(zip(dev_names, dev_combo))
        HMCConfig(**dev_kwargs)  # validate once, in the parent, fail fast
        for mac_combo in itertools.product(*(mac_axes[n] for n in mac_names)):
            mac_kwargs = dict(zip(mac_names, mac_combo))
            if mac_kwargs:
                MACConfig(**mac_kwargs)
            params = tuple(zip(dev_names, dev_combo)) + tuple(
                zip(mac_names, mac_combo)
            )
            for name in workloads:
                tasks.append(
                    _DeviceSweepTask(
                        params=params,
                        device_kwargs=tuple(sorted(dev_kwargs.items())),
                        mac_kwargs=tuple(sorted(mac_kwargs.items())),
                        workload=name,
                        threads=threads,
                        ops_per_thread=ops_per_thread,
                        seed=seed,
                        policy=policy.value,
                    )
                )
    warm = sorted({(t.workload, t.threads, t.ops_per_thread, t.seed) for t in tasks})
    return run_tasks(
        _run_device_sweep_task,
        tasks,
        jobs=jobs,
        progress=progress,
        log_every=log_every,
        warm=warm,
    )


def format_device_sweep(points: Sequence[DeviceSweepPoint]) -> str:
    """Result table for a device sweep (one row per cell x workload)."""
    points = [p for p in points if isinstance(p, DeviceSweepPoint)]
    if not points:
        return "(empty sweep)"
    axis_names = [n for n, _ in points[0].params]
    headers = axis_names + [
        "workload", "mean lat", "makespan", "conflicts", "row hits", "noc stall",
    ]
    rows = [
        [dict(p.params)[n] for n in axis_names]
        + [
            p.workload,
            round(p.mean_latency, 1),
            p.makespan,
            p.bank_conflicts,
            round(p.row_hit_rate, 3),
            p.noc_contention_cycles,
        ]
        for p in points
    ]
    return format_table(headers, rows, title="HMC device design-space sweep")


def format_sweep(points: Sequence[SweepPoint]) -> str:
    """Result table for a sweep (one row per grid cell x workload).

    Quarantined cells (:class:`repro.eval.supervisor.CellFailure` from a
    supervised run) are skipped, not rendered.
    """
    points = [p for p in points if isinstance(p, SweepPoint)]
    if not points:
        return "(empty sweep)"
    axis_names = [n for n, _ in points[0].params]
    headers = axis_names + ["workload", "efficiency", "bw eff", "tgt/pkt"]
    rows = [
        [dict(p.params)[n] for n in axis_names]
        + [p.workload, p.efficiency, p.bandwidth_efficiency, p.avg_targets]
        for p in points
    ]
    return format_table(headers, rows, title="MAC design-space sweep")


#: Optimization direction per SweepPoint metric: ``True`` = larger is
#: better (efficiencies, targets merged per packet), ``False`` = smaller
#: is better (packets — fewer emitted packets means more coalescing).
METRIC_MAXIMIZE: Dict[str, bool] = {
    "efficiency": True,
    "bandwidth_efficiency": True,
    "avg_targets": True,
    "packets": False,
}


def best_point(
    points: Sequence[SweepPoint], metric: str = "efficiency"
) -> SweepPoint:
    """Grid cell with the best suite-average of ``metric``.

    Direction-aware: ``efficiency``, ``bandwidth_efficiency`` and
    ``avg_targets`` are maximized; ``packets`` is *minimized* (packets is
    a lower-is-better metric — fewer emitted packets for the same raw
    requests means better coalescing).  See :data:`METRIC_MAXIMIZE`.

    Cells whose suite-average is NaN — e.g. a fence-only stream where
    ``coalescing_efficiency`` is undefined — are excluded from the
    ranking rather than silently comparing as best/worst; an all-NaN
    sweep raises.
    """
    points = [p for p in points if isinstance(p, SweepPoint)]
    if not points:
        raise ValueError("empty sweep")
    if metric not in METRIC_MAXIMIZE:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {sorted(METRIC_MAXIMIZE)}"
        )
    by_params: Dict[Tuple, List[SweepPoint]] = {}
    for p in points:
        by_params.setdefault(p.params, []).append(p)

    def score(items: List[SweepPoint]) -> float:
        return sum(getattr(p, metric) for p in items) / len(items)

    scored = [
        (cell, score(cell))
        for cell in by_params.values()
        if not math.isnan(score(cell))
    ]
    if not scored:
        raise ValueError(f"metric {metric!r} is undefined (NaN) on every cell")
    choose: Callable = max if METRIC_MAXIMIZE[metric] else min
    best, _ = choose(scored, key=lambda item: item[1])
    return best[0]
