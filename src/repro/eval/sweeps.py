"""Grid parameter sweeps over MAC configurations.

A small design-space-exploration utility: declare axes (MACConfig field
-> list of values), run every combination of the grid over one or more
workload traces through the window engine, and get a tidy result table
back.  Used by the design-space example and handy for ad-hoc studies::

    results = sweep_grid(
        {"arq_entries": [8, 32, 128], "row_bytes": [256, 1024]},
        workloads=("MG", "IS"),
    )
    print(format_sweep(results))
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.trace.record import to_requests

from .report import format_table
from .runner import cached_trace

_VALID_FIELDS = {f.name for f in dataclasses.fields(MACConfig)}


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome for one workload."""

    params: Tuple[Tuple[str, Any], ...]
    workload: str
    efficiency: float
    packets: int
    bandwidth_efficiency: float
    avg_targets: float

    def param(self, name: str) -> Any:
        return dict(self.params)[name]


def sweep_grid(
    axes: Dict[str, Sequence[Any]],
    workloads: Sequence[str] = ("SG",),
    threads: int = 4,
    ops_per_thread: int = 1000,
    base: Optional[MACConfig] = None,
    policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    seed: int = 2019,
) -> List[SweepPoint]:
    """Run the full cartesian grid; returns one SweepPoint per cell."""
    if not axes:
        raise ValueError("need at least one sweep axis")
    unknown = set(axes) - _VALID_FIELDS
    if unknown:
        raise ValueError(f"unknown MACConfig fields: {sorted(unknown)}")
    base_kwargs = (
        {f.name: getattr(base, f.name) for f in dataclasses.fields(MACConfig)}
        if base is not None
        else {}
    )
    names = list(axes)
    out: List[SweepPoint] = []
    for combo in itertools.product(*(axes[n] for n in names)):
        kwargs = dict(base_kwargs)
        kwargs.update(dict(zip(names, combo)))
        # Keep dependent fields consistent when only the row size moves.
        if "row_bytes" in kwargs and "max_request_bytes" not in axes:
            kwargs["max_request_bytes"] = min(
                kwargs.get("max_request_bytes", 256), kwargs["row_bytes"]
            ) if kwargs["row_bytes"] < 256 else kwargs["row_bytes"]
        cfg = MACConfig(**kwargs)
        for name in workloads:
            trace = cached_trace(name, threads, ops_per_thread, seed)
            stats = MACStats()
            coalesce_trace_fast(list(to_requests(trace)), cfg, policy, stats)
            out.append(
                SweepPoint(
                    params=tuple(zip(names, combo)),
                    workload=name,
                    efficiency=stats.coalescing_efficiency,
                    packets=stats.coalesced_packets,
                    bandwidth_efficiency=stats.coalesced_bandwidth_efficiency,
                    avg_targets=stats.avg_targets_per_packet,
                )
            )
    return out


def format_sweep(points: Sequence[SweepPoint]) -> str:
    """Result table for a sweep (one row per grid cell x workload)."""
    if not points:
        return "(empty sweep)"
    axis_names = [n for n, _ in points[0].params]
    headers = axis_names + ["workload", "efficiency", "bw eff", "tgt/pkt"]
    rows = [
        [dict(p.params)[n] for n in axis_names]
        + [p.workload, p.efficiency, p.bandwidth_efficiency, p.avg_targets]
        for p in points
    ]
    return format_table(headers, rows, title="MAC design-space sweep")


def best_point(
    points: Sequence[SweepPoint], metric: str = "efficiency"
) -> SweepPoint:
    """Grid cell with the best suite-average of ``metric``."""
    if not points:
        raise ValueError("empty sweep")
    by_params: Dict[Tuple, List[SweepPoint]] = {}
    for p in points:
        by_params.setdefault(p.params, []).append(p)
    def score(items: List[SweepPoint]) -> float:
        return sum(getattr(p, metric) for p in items) / len(items)
    best = max(by_params.values(), key=score)
    return best[0]
