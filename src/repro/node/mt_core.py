"""Temporally multithreaded core — the extension sketched in section 3.

The paper's base core "generates memory references and stalls until the
memory operation completes"; the end of section 3 proposes exploiting
the scratchpad for *temporal multithreading with quick context
switching* when spatial parallelism alone cannot saturate the memory
system.  This core implements that: K hardware contexts, each a strict
stall-on-miss thread with one outstanding memory operation, sharing one
issue port round-robin.  With enough contexts the core sustains close
to one request per cycle against hundreds of cycles of memory latency —
the concurrency behind Fig. 9's offered load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.request import MemoryRequest
from repro.obs.protocol import StatsMixin
from repro.sim import register_wake_protocol

from .spm import ScratchpadMemory


@dataclass
class _Context:
    """One hardware thread: stream + single outstanding operation."""

    stream: Iterator[MemoryRequest]
    next_req: Optional[MemoryRequest] = None
    #: (tid, tag) of the in-flight operation, None when ready to issue.
    waiting_on: Optional[tuple] = None
    #: Cycle an SPM hit (or context switch penalty) resolves.
    ready_cycle: int = 0
    issued: int = 0
    done: bool = False


@dataclass
class MTCoreStats(StatsMixin):
    issued: int = 0
    spm_hits: int = 0
    mac_requests: int = 0
    idle_cycles: int = 0  # no context ready to issue
    switches: int = 0


@register_wake_protocol
class MultithreadedCore:
    """K-context barrel-style core with stall-on-miss threads."""

    def __init__(
        self,
        core_id: int,
        streams: Sequence[Iterator[MemoryRequest]],
        spm: Optional[ScratchpadMemory] = None,
        switch_penalty: int = 1,
    ) -> None:
        if not streams:
            raise ValueError("need at least one context")
        self.core_id = core_id
        self.spm = spm or ScratchpadMemory()
        self.switch_penalty = max(switch_penalty, 0)
        self.contexts: List[_Context] = []
        for s in streams:
            it = iter(s)
            ctx = _Context(stream=it)
            ctx.next_req = next(it, None)
            ctx.done = ctx.next_req is None
            self.contexts.append(ctx)
        self.stats = MTCoreStats()
        self._rr = 0
        self._last: Optional[_Context] = None
        self._last_issued: Optional[tuple] = None  # (context, request)

    @property
    def done(self) -> bool:
        return all(c.done and c.waiting_on is None for c in self.contexts)

    def tick(self, cycle: int) -> Optional[MemoryRequest]:
        """Issue from the next ready context; returns a MAC-bound request."""
        n = len(self.contexts)
        for i in range(n):
            ctx = self.contexts[(self._rr + i) % n]
            if ctx.done or ctx.waiting_on is not None or ctx.ready_cycle > cycle:
                continue
            # Found a ready context; rotating the start pointer models
            # the single shared issue port.
            if self._last is not None and self._last is not ctx:
                self.stats.switches += 1
            self._last = ctx
            self._rr = (self._rr + i + 1) % n

            req = ctx.next_req
            assert req is not None
            ctx.next_req = next(ctx.stream, None)
            if ctx.next_req is None:
                ctx.done = True
            req.issue_cycle = cycle
            ctx.issued += 1
            self.stats.issued += 1

            spm_latency = self.spm.access(req.addr)
            if spm_latency is not None:
                self.stats.spm_hits += 1
                ctx.ready_cycle = cycle + spm_latency
                return None
            self.stats.mac_requests += 1
            ctx.waiting_on = (req.tid, req.tag)
            ctx.ready_cycle = cycle + self.switch_penalty
            self._last_issued = (ctx, req)
            return req
        self.stats.idle_cycles += 1
        return None

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` any context can issue on its own.

        Contexts blocked on an in-flight memory operation wake only via
        :meth:`complete` (an external event); contexts resolving an SPM
        hit or a switch penalty wake at their ``ready_cycle``.
        """
        wake: Optional[int] = None
        for ctx in self.contexts:
            if ctx.done or ctx.waiting_on is not None:
                continue
            if ctx.ready_cycle <= now:
                return now
            if wake is None or ctx.ready_cycle < wake:
                wake = ctx.ready_cycle
        return wake

    def skip(self, start: int, end: int) -> None:
        """Bulk-account ticks [start, end) in which no context could issue.

        Every such tick walks the context list, finds nothing ready and
        counts one idle cycle; the round-robin pointer and last-issuer
        latch are untouched.
        """
        self.stats.idle_cycles += end - start

    def retry(self) -> None:
        """Undo the last tick's issue (downstream queue was full)."""
        if self._last_issued is None:
            raise RuntimeError("nothing to retry")
        ctx, req = self._last_issued
        self._last_issued = None
        ctx.waiting_on = None
        if ctx.next_req is not None:
            # Chain the displaced request back in front.
            displaced = ctx.next_req
            stream = ctx.stream

            def _chain(first=displaced, rest=stream):
                yield first
                yield from rest

            ctx.stream = _chain()
        ctx.next_req = req
        ctx.done = False
        ctx.issued -= 1
        self.stats.issued -= 1
        self.stats.mac_requests -= 1
        ctx.ready_cycle = 0

    def complete(self, tid: int, tag: int, cycle: int) -> bool:
        """Wake the context blocked on (tid, tag); True if matched."""
        for ctx in self.contexts:
            if ctx.waiting_on == (tid, tag):
                ctx.waiting_on = None
                ctx.ready_cycle = max(ctx.ready_cycle, cycle + self.switch_penalty)
                return True
        return False

    @property
    def outstanding(self) -> int:
        return sum(1 for c in self.contexts if c.waiting_on is not None)
