"""One full node: cores + SPMs + MAC + local HMC device, closed loop.

This is the dashed box of the paper's Fig. 4: multiple simple in-order
cores behind a request router, the MAC, and a directly attached
3D-stacked memory device.  The node simulation advances all components
on one clock and delivers memory responses back to the issuing cores'
load/store queues, so end-to-end latency and throughput effects
(Fig. 17) emerge from the closed loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import MACConfig, SystemConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import MAC
from repro.core.request import MemoryRequest
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.obs.attribution import NULL_ATTRIBUTION
from repro.obs.metrics import flatten
from repro.obs.protocol import StatsMixin
from repro.obs.timeline import NULL_TIMELINE
from repro.obs.tracer import NULL_TRACER
from repro.sim import ClockedModel, register_wake_protocol

from .core import InOrderCore
from .spm import ScratchpadMemory


@dataclass
class NodeStats(StatsMixin):
    # The derived fills are per-run summaries, not additive counters:
    # the pessimistic (max) value is the honest cross-worker aggregate.
    MERGE_MAX = frozenset(
        {"cycles", "coalescing_efficiency", "mean_memory_latency",
         "link_bandwidth_loss"}
    )

    cycles: int = 0
    requests_issued: int = 0
    responses_delivered: int = 0

    # Filled from subcomponents at the end of a run.
    coalescing_efficiency: float = 0.0
    bank_conflicts: int = 0
    mean_memory_latency: float = 0.0

    # Fault-injection outcomes (all zero when faults are disabled).
    poisoned_responses: int = 0
    response_timeouts: int = 0
    reissued_packets: int = 0
    duplicate_responses: int = 0
    link_retries: int = 0
    link_crc_errors: int = 0
    failed_links: int = 0
    link_bandwidth_loss: float = 0.0


@register_wake_protocol
class Node(ClockedModel):
    """Closed-loop simulation of one node of the Fig. 4 architecture.

    The node runs a per-core event wheel: each core is ACTIVE (ticked
    every cycle), PARKED (scheduled to wake at a known future cycle on
    the ``_core_wake`` heap — an SPM retirement or issue cooldown), or
    BLOCKED (wakes only when a response delivery reactivates it).  A
    parked or blocked core's per-cycle accounting is deferred and
    applied in bulk via ``core.skip(parked_at, now)`` at reactivation,
    so results stay bit-identical to ticking every core every cycle
    while the hot loop touches only the cores that can act.
    """

    _overrun_msg = "node simulation exceeded max_cycles"

    def __init__(
        self,
        streams: Sequence[Iterator[MemoryRequest]],
        system: Optional[SystemConfig] = None,
        hmc_config: Optional[HMCConfig] = None,
        node_id: int = 0,
        policy: FlitTablePolicy = FlitTablePolicy.SPAN,
        coalescing_enabled: bool = True,
        spm_factory: Optional[Callable[[int], ScratchpadMemory]] = None,
        lsq_capacity: Optional[int] = None,
        tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
        timeline=NULL_TIMELINE,
    ) -> None:
        self.system = system or SystemConfig()
        self.node_id = node_id
        self.tracer = tracer
        self.attrib = attrib
        self.timeline = timeline
        #: With coalescing disabled the MAC degenerates to a 1-entry ARQ
        #: with no latency hiding: every request ships as a 16 B packet
        #: (the paper's "without MAC" baseline).
        mac_cfg = (
            self.system.mac
            if coalescing_enabled
            else MACConfig(arq_entries=1, latency_hiding=False)
        )
        self.mac = MAC(
            mac_cfg, node_id=node_id, policy=policy, tracer=tracer, attrib=attrib
        )
        self.device = HMCDevice(hmc_config, tracer=tracer, attrib=attrib)
        self.cores: List[InOrderCore] = []
        for cid, stream in enumerate(streams):
            spm = (
                spm_factory(cid)
                if spm_factory is not None
                else ScratchpadMemory(
                    self.system.spm_bytes, self.system.spm_latency_cycles
                )
            )
            if lsq_capacity is None:
                self.cores.append(InOrderCore(cid, stream, spm=spm))
            else:
                # Shallow LSQs model the paper's strict stall-on-miss base
                # core: the latency-bound regime the skip engine targets.
                self.cores.append(
                    InOrderCore(cid, stream, spm=spm, lsq_capacity=lsq_capacity)
                )
        self.stats = NodeStats()
        self._cycle = 0
        #: Min-heap of (complete_cycle, seq, response) awaiting delivery.
        self._in_flight: List = []
        self._seq = 0
        #: (target, raw) pairs for remote requesters, collected by the
        #: NUMA system each tick.
        self.pending_remote: List = []
        #: (tid, tag) -> issuing core, recorded when the MAC accepts a
        #: request, so response delivery is a dict lookup instead of a
        #: scan over every core (multithreaded cores may host a thread
        #: whose tid does not match their position in ``self.cores``).
        self._issuer: Dict[Tuple[int, int], object] = {}
        self._reset_wheel()

    # -- per-core event wheel ------------------------------------------------

    def _reset_wheel(self) -> None:
        """(Re)build the wheel; every core starts ACTIVE at this cycle."""
        n = len(self.cores)
        self._wheel_size = n
        self._core_active = [True] * n
        self._active_count = n
        #: Cycle up to which each inactive core's accounting is settled.
        self._core_parked_at = [self._cycle] * n
        #: Scheduled wake cycle per core (None = blocked on a delivery).
        self._core_wake: List[Optional[int]] = [None] * n
        #: Min-heap of (wake_cycle, core_index); entries whose cycle no
        #: longer matches ``_core_wake`` are stale and dropped on pop.
        self._wake_heap: List[Tuple[int, int]] = []
        for i, core in enumerate(self.cores):
            core._wheel_idx = i

    def _activate(self, idx: int, cycle: int) -> None:
        """Catch an inactive core up to ``cycle`` and mark it active."""
        parked = self._core_parked_at[idx]
        if cycle > parked:
            self.cores[idx].skip(parked, cycle)
        self._core_active[idx] = True
        self._active_count += 1
        self._core_wake[idx] = None

    def _sync_cores(self) -> None:
        """Apply deferred accounting of inactive cores up to now.

        Cores stay parked/blocked; only their bulk counters advance.
        Needed before any external observation of core stats.
        """
        now = self._cycle
        for idx, active in enumerate(self._core_active):
            if not active and self._core_parked_at[idx] < now:
                self.cores[idx].skip(self._core_parked_at[idx], now)
                self._core_parked_at[idx] = now

    def done(self) -> bool:
        if self._in_flight or not self.mac.idle():
            return False
        if self.mac.response_router.outstanding:
            return False
        return all(c.done for c in self.cores)

    @property
    def degraded(self) -> bool:
        """True once the device lost at least one link to a hard fault."""
        return bool(self.device.failed_links)

    def metrics(self) -> dict:
        """Flat namespaced metrics over every stats source of the node.

        Unions the MAC's (``mac.*``/``router.*``/``arq.*``) and the
        device's (``device.*``/``vaults.*``/``links.*``/``faults.*``)
        already-namespaced views with ``node.*`` and summed ``cores.*``.
        """
        self._sync_cores()
        out = flatten(self.stats.snapshot(), "node.")
        out.update(self.mac.metrics())
        out.update(self.device.metrics())
        core_totals: dict = {}
        for core in self.cores:
            for key, value in core.stats.snapshot().items():
                if isinstance(value, (int, float)):
                    core_totals[key] = core_totals.get(key, 0) + value
        out.update(flatten(core_totals, "cores."))
        return out

    def timeline_probes(self):
        """Node-level probes plus the MAC's and the device's (DESIGN 13).

        Levels read occupancies whose every mutation happens on this
        node, so under sharding they land on exactly one shard; rates
        are monotonic counters whose per-epoch deltas merge by summing.
        """
        stats = self.stats
        probes = [
            ("node.requests_issued", "rate", lambda: stats.requests_issued),
            (
                "node.responses_delivered",
                "rate",
                lambda: stats.responses_delivered,
            ),
            ("node.inflight", "level", lambda: len(self._in_flight)),
            (
                "node.lsq_depth",
                "level",
                lambda: sum(
                    len(c.lsq)
                    for c in self.cores
                    if getattr(c, "lsq", None) is not None
                ),
            ),
        ]
        probes.extend(self.mac.timeline_probes())
        probes.extend(self.device.timeline_probes())
        return probes

    def tick(self) -> None:
        cycle = self._cycle
        if self._wheel_size != len(self.cores):
            self._reset_wheel()

        # 0. Wake parked cores whose scheduled cycle has arrived.
        wheap = self._wake_heap
        while wheap and wheap[0][0] <= cycle:
            wake, idx = heapq.heappop(wheap)
            if self._core_wake[idx] == wake and not self._core_active[idx]:
                self._activate(idx, cycle)

        # 1. Deliver responses that completed by now.
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, _, resp = heapq.heappop(self._in_flight)
            self.mac.receive_response(resp)
        if self.mac.response_router.buffered:
            local, remote = self.mac.deliver_responses()
            self.pending_remote.extend(remote)
            at = self.attrib
            for target, raw in local:
                if at.enabled:
                    # Inlined AttributionCollector.mark (hot: every response).
                    m = raw.marks
                    if m is None:
                        m = raw.marks = {}
                    m["deliver"] = cycle
                    at.finalize(raw)
                self.deliver_completion(target, raw, cycle)
                self.stats.responses_delivered += 1

        # 2. Active cores issue.  Iterating in list order preserves the
        # arbitration order of the all-cores lockstep loop, so contention
        # for the last MAC input slot resolves identically.
        active = self._core_active
        cores = self.cores
        submit = self.mac.submit
        for idx in range(self._wheel_size):
            if not active[idx]:
                continue
            core = cores[idx]
            req = core.tick(cycle)
            if req is not None:
                if submit(req):
                    self.stats.requests_issued += 1
                    if not req.is_fence:
                        # Fences never get a response; everything else is
                        # matched back to its issuer at delivery time.
                        self._issuer[(req.tid, req.tag)] = core
                else:
                    # Input queue full: the core re-issues next cycle, so
                    # it must stay active regardless of its wake probe.
                    core.retry()
                    continue
            # Park decision: where can this core act next on its own?
            w = core.next_event_cycle(cycle + 1)
            if w is None:
                active[idx] = False
                self._active_count -= 1
                self._core_parked_at[idx] = cycle + 1
            elif w > cycle + 1:
                active[idx] = False
                self._active_count -= 1
                self._core_parked_at[idx] = cycle + 1
                self._core_wake[idx] = w
                heapq.heappush(wheap, (w, idx))

        # 3. MAC advances; emitted packets enter the device.
        faulty = self.device.injector is not None
        for packet in self.mac.tick():
            if faulty:
                self.mac.response_router.register_dispatch(packet, cycle)
            resp = self.device.submit(packet, cycle)
            if resp is None:
                continue  # response lost in flight; timeout re-issues it
            self._seq += 1
            heapq.heappush(self._in_flight, (resp.complete_cycle, self._seq, resp))

        # 4. Timeout recovery: re-issue packets whose response never came.
        if faulty:
            timeout = self.device.config.faults.timeout_cycles
            for packet in self.mac.response_router.check_timeouts(cycle, timeout):
                self.mac.response_router.register_dispatch(packet, cycle)
                resp = self.device.submit(packet, cycle)
                if resp is None:
                    continue
                self._seq += 1
                heapq.heappush(
                    self._in_flight, (resp.complete_cycle, self._seq, resp)
                )

        self._cycle += 1

    def deliver_completion(self, target, raw, cycle: int) -> bool:
        """Hand one completed raw request back to the core that issued it.

        The issuer map is populated at submit time, so delivery is O(1);
        remote completions routed home by the NUMA system take the same
        path.  The modulo fallback only covers requests that never passed
        through :meth:`tick`'s submit (e.g. hand-built test traffic).

        Returns True if a waiting core matched the completion.  False
        means no LSQ/context entry was waiting — a duplicate of an
        already-delivered completion; the caller suppresses and counts
        it exactly once instead of double-completing.
        """
        core = self._issuer.pop((target.tid, target.tag), None)
        if core is None:
            core = self.cores[raw.core % len(self.cores)]
        # Reactivate the issuer BEFORE completing: core.skip reads the
        # pre-delivery LSQ/fence state, so the deferred span must be
        # settled while that state is still what every skipped tick saw.
        idx = getattr(core, "_wheel_idx", None)
        if idx is None or idx >= self._wheel_size or self.cores[idx] is not core:
            self._reset_wheel()
        elif not self._core_active[idx]:
            self._activate(idx, cycle)
        return core.complete(target.tid, target.tag, cycle)

    def detach_streams(self) -> None:
        """Replace per-core request streams with exhausted iterators.

        Generators cannot cross a process boundary; after a completed
        run the streams are drained anyway, so a shard worker shipping
        its nodes back to the PDES parent (:mod:`repro.sim.pdes`) swaps
        them for empty — picklable — iterators first.
        """
        for core in self.cores:
            if hasattr(core, "_stream"):
                core._stream = iter(())
            for ctx in getattr(core, "contexts", ()):
                ctx.stream = iter(())

    # -- quiescence skipping -------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which this node can make progress.

        O(1) thanks to the per-core event wheel: any active core pins the
        node to ``now``; otherwise the wake is the minimum of the core
        wake heap head, the in-flight response heap head, and the
        loss-recovery timeout deadline (fault injection).  A busy MAC
        (anything buffered in its queues, ARQ or builder) pins the node
        to lockstep, as does any undelivered response payload.
        """
        if self._wheel_size != len(self.cores):
            return now  # cores were swapped; next tick rebuilds the wheel
        if self._active_count:
            return now
        if not self.mac.idle():
            return now
        rr = self.mac.response_router
        if rr.buffered or self.pending_remote:
            return now
        wake: Optional[int] = None
        if self._in_flight:
            head = self._in_flight[0][0]
            if head <= now:
                return now
            wake = head
        if self.device.injector is not None and rr.outstanding:
            deadline = rr.next_timeout_cycle(
                self.device.config.faults.timeout_cycles
            )
            if deadline is not None:
                if deadline <= now:
                    return now
                if wake is None or deadline < wake:
                    wake = deadline
        wheap = self._wake_heap
        while wheap:
            w, idx = wheap[0]
            if self._core_wake[idx] != w or self._core_active[idx]:
                heapq.heappop(wheap)  # stale entry
                continue
            if w <= now:
                return now
            if wake is None or w < wake:
                wake = w
            break
        return wake

    def skip_to(self, target: int) -> None:
        """Fast-forward the node over a proven-quiescent span.

        Inactive cores are left parked — their deferred spans simply grow
        to ``target`` and settle at reactivation (or in
        :meth:`_sync_cores` before stats are read).  ``next_event_cycle``
        only ever returns a future wake when no core is active, so there
        is no active-core accounting to replay here.
        """
        start = self._cycle
        if target <= start:
            return
        self.mac.skip_to(target)
        self._cycle = target

    # -- robustness introspection (see repro.sim.watchdog) -------------------

    def outstanding_raw_count(self) -> int:
        """Non-fence raw requests in flight anywhere inside this node.

        Containers walked: the MAC's queues/ARQ/builder, the device
        in-flight response heap, the response buffer, and completions
        awaiting fabric pickup.  Under request conservation this equals
        ``len(self._issuer)`` — every accepted request is in exactly one
        container until it is delivered back to its core.
        """
        return (
            self.mac.pending_request_count()
            + sum(len(resp.request.requests) for _, _, resp in self._in_flight)
            + self.mac.response_router.buffered_raw_count()
            + len(self.pending_remote)
        )

    def progress_token(self):
        """Fingerprint that changes whenever the node makes forward progress."""
        return (
            self.stats.requests_issued,
            self.stats.responses_delivered,
            sum(c.stats.issued for c in self.cores),
            self._active_count,
            len(self._wake_heap),
            len(self._in_flight),
            len(self._issuer),
            len(self.pending_remote),
            self.mac.progress_token(),
        )

    def hang_snapshot(self) -> dict:
        """Diagnostic state attached to a :class:`SimulationHang`."""
        self._sync_cores()
        snap = self.mac.hang_snapshot()
        snap.update(
            cycle=self._cycle,
            node=self.node_id,
            in_flight_responses=len(self._in_flight),
            issuer_entries=len(self._issuer),
            pending_remote=len(self.pending_remote),
            cores_done=sum(1 for c in self.cores if c.done),
            cores=len(self.cores),
            cores_active=self._active_count,
            cores_scheduled=len(self._wake_heap),
        )
        if self.device.injector is not None:
            snap["failed_links"] = list(self.device.failed_links)
            tokens = {}
            for link in self.device.links:
                for name, ch in (("req", link.request), ("rsp", link.response)):
                    if ch.retry is not None:
                        tokens[f"link{link.index}_{name}"] = ch.retry.tokens.available
            snap["link_tokens"] = tokens
        return snap

    def check_invariants(self) -> None:
        """Full sanitizer sweep (``REPRO_SIM_CHECK=1``); raise on breach.

        Bounds and token-conservation checks always run; exact request
        conservation (``issued == delivered + in-flight``) only holds in
        the fault-free single-node configuration — fault injection drops
        and duplicates responses by design, and in a NUMA mesh remote
        raws live on the fabric (the system-level check covers that).
        """
        from repro.sim.watchdog import InvariantViolation

        cycle = self._cycle
        self.mac.check_invariants()
        for core in self.cores:
            lsq = getattr(core, "lsq", None)
            if lsq is not None and len(lsq) > lsq.capacity:
                raise InvariantViolation(
                    cycle,
                    f"core {core.core_id} LSQ over capacity "
                    f"({len(lsq)}/{lsq.capacity})",
                )
        for link in self.device.links:
            for name, ch in (("req", link.request), ("rsp", link.response)):
                rs = ch.retry
                if rs is None:
                    continue
                for label, pool in (
                    ("tokens", rs.tokens),
                    ("retry_buffer", rs.retry_buffer),
                ):
                    if pool.available < 0:
                        raise InvariantViolation(
                            cycle,
                            f"link{link.index}.{name} {label} negative "
                            f"({pool.available})",
                        )
                    held = pool.available + pool.queued_returns
                    if held > pool.capacity:
                        raise InvariantViolation(
                            cycle,
                            f"link{link.index}.{name} {label} leak: "
                            f"{held} credits for capacity {pool.capacity}",
                        )
        if (
            self.device.injector is None
            and self.mac.request_router.home_fn is None
        ):
            issued = len(self._issuer)
            counted = self.outstanding_raw_count()
            if issued != counted:
                raise InvariantViolation(
                    cycle,
                    f"request conservation broken: issuer map holds {issued} "
                    f"in-flight requests but containers hold {counted}",
                )

    @classmethod
    def with_multithreaded_cores(
        cls,
        thread_streams: Sequence[Iterator[MemoryRequest]],
        cores: int = 8,
        system: Optional[SystemConfig] = None,
        hmc_config: Optional[HMCConfig] = None,
        coalescing_enabled: bool = True,
        attrib=NULL_ATTRIBUTION,
        **core_kwargs,
    ) -> "Node":
        """Build a node whose cores temporally multithread (section 3).

        ``thread_streams`` are distributed round-robin over ``cores``
        :class:`repro.node.mt_core.MultithreadedCore` instances, each
        keeping one request outstanding per context — the explicit form
        of the concurrency the plain Node's deep LSQs approximate.
        """
        from .mt_core import MultithreadedCore

        node = cls(
            [],
            system=system,
            hmc_config=hmc_config,
            coalescing_enabled=coalescing_enabled,
            attrib=attrib,
        )
        groups: List[List[Iterator[MemoryRequest]]] = [[] for _ in range(cores)]
        for i, stream in enumerate(thread_streams):
            groups[i % cores].append(stream)
        node.cores = [
            MultithreadedCore(cid, streams, **core_kwargs)
            for cid, streams in enumerate(groups)
            if streams
        ]
        node._reset_wheel()
        return node

    def run(self, max_cycles: int = 50_000_000, engine=None) -> NodeStats:
        """Simulate until every stream drains; returns the filled stats.

        ``engine`` selects the simulation engine (name or instance, see
        :mod:`repro.sim`); the default honours ``$REPRO_SIM_ENGINE`` and
        falls back to lockstep.
        """
        self._run_loop(max_cycles, engine=engine)
        self._sync_cores()
        st = self.stats
        st.cycles = self._cycle
        st.coalescing_efficiency = self.mac.stats.coalescing_efficiency
        st.bank_conflicts = self.device.bank_conflicts
        st.mean_memory_latency = self.device.stats.mean_latency
        rr = self.mac.response_router
        st.poisoned_responses = rr.poisoned_deliveries
        st.response_timeouts = rr.timeouts
        st.reissued_packets = rr.reissues
        st.duplicate_responses = rr.duplicates_suppressed
        st.failed_links = len(self.device.failed_links)
        st.link_bandwidth_loss = self.device.link_bandwidth_loss
        for link in self.device.links:
            events = link.retry_events
            st.link_retries += events["retries"]
            st.link_crc_errors += events["crc_errors"]
        return st
