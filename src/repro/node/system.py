"""Multi-node NUMA system (paper Fig. 4, section 3).

Each node owns one 3D-stacked memory device; the physical address space
is interleaved across nodes at a configurable granularity.  Requests for
remote devices travel: local request router (Global Access Queue) ->
interconnect -> remote Remote Access Queue -> remote MAC -> remote HMC,
and the response retraces the path.  Remote traffic coalesces in the
*home* node's MAC together with that node's local traffic — the
generality claim of section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.request import MemoryRequest
from repro.obs.attribution import NULL_ATTRIBUTION, StallCause
from repro.obs.protocol import StatsMixin

from repro.obs.metrics import flatten
from repro.obs.tracer import NULL_TRACER
from repro.sim import ClockedModel, register_wake_protocol

from .interconnect import Interconnect
from .node import Node


def interleaved_home(nodes: int, granularity: int = 1 << 12):
    """Address -> home-node mapping, interleaved at ``granularity`` bytes."""
    if nodes < 1:
        raise ValueError("need at least one node")
    if granularity & (granularity - 1):
        raise ValueError("granularity must be a power of two")
    shift = granularity.bit_length() - 1

    def home(addr: int) -> int:
        return (addr >> shift) % nodes

    return home


@dataclass
class SystemStats(StatsMixin):
    MERGE_MAX = frozenset({"cycles", "link_bandwidth_loss"})

    cycles: int = 0
    local_requests: int = 0
    remote_requests: int = 0
    responses: int = 0

    # Degraded-mode outcomes (all zero when fault injection is off).
    failed_links: int = 0
    link_bandwidth_loss: float = 0.0
    poisoned_responses: int = 0
    reissued_packets: int = 0


@register_wake_protocol
class NUMASystem(ClockedModel):
    """A small mesh of MAC-equipped nodes sharing one address space."""

    _overrun_msg = "system simulation exceeded max_cycles"

    def __init__(
        self,
        streams_per_node: Sequence[Sequence[Iterator[MemoryRequest]]],
        system: Optional[SystemConfig] = None,
        interconnect_latency: int = 120,
        interleave_bytes: int = 1 << 12,
        hmc_config=None,
        tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
    ) -> None:
        n = len(streams_per_node)
        if n < 1:
            raise ValueError("need at least one node")
        self.tracer = tracer
        self.attrib = attrib
        self.home = interleaved_home(n, interleave_bytes)
        self.nodes: List[Node] = []
        for nid, streams in enumerate(streams_per_node):
            node = Node(
                streams,
                system=system,
                hmc_config=hmc_config,
                node_id=nid,
                tracer=tracer,
                attrib=attrib,
            )
            # Rewire the request router with the shared home function.
            node.mac.request_router.home_fn = self.home
            self.nodes.append(node)
        self.fabric = Interconnect(interconnect_latency)
        self.stats = SystemStats()
        self._cycle = 0

    def done(self) -> bool:
        return all(node.done() for node in self.nodes) and self.fabric.in_flight == 0

    def tick(self) -> None:
        cycle = self._cycle

        # Fabric deliveries: raw requests into remote queues, response
        # payloads back to the requesting core.
        at = self.attrib
        for dst, payload in self.fabric.deliver(cycle):
            node = self.nodes[dst]
            if isinstance(payload, MemoryRequest):
                if not node.mac.submit_remote(payload):
                    # Remote queue full: bounce back onto the fabric with
                    # a retry delay (simple NACK protocol).
                    self.fabric.send(cycle, dst, payload)
                    if at.enabled:
                        at.stall_span(
                            "fabric",
                            StallCause.RESPONSE_BACKPRESSURE,
                            cycle,
                            cycle + 1,
                        )
            else:  # (target, raw) completion pair heading home
                target, raw = payload
                node.deliver_completion(target, raw, cycle)
                self.stats.responses += 1
                if at.enabled:
                    m = raw.marks
                    if m is None:
                        m = raw.marks = {}
                    m["deliver"] = cycle
                    at.finalize(raw)

        # Per-node progress, with remote routing.
        for node in self.nodes:
            node.tick()
            # Outbound remote raw requests.
            while True:
                req = node.mac.request_router.next_outbound()
                if req is None:
                    break
                self.stats.remote_requests += 1
                self.fabric.send(cycle, self.home(req.addr), req)
            # Responses for remote requesters (collected by node.tick).
            for target, raw in node.pending_remote:
                self.fabric.send(cycle, raw.node, (target, raw))
            node.pending_remote.clear()

        self._cycle += 1

    # -- quiescence skipping -------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which any part of the mesh acts.

        Wake sources: the fabric's earliest delivery and every node's own
        schedule.  Undrained outbound-remote traffic (possible only if a
        caller ticks a node outside :meth:`tick`) pins the system to
        lockstep rather than risking a missed send.
        """
        wake = self.fabric.next_event_cycle(now)
        if wake is not None and wake <= now:
            return now
        for node in self.nodes:
            if not node.mac.request_router.global_queue.empty:
                return now
            w = node.next_event_cycle(now)
            if w is None:
                continue
            if w <= now:
                return now
            if wake is None or w < wake:
                wake = w
        return wake

    def skip_to(self, target: int) -> None:
        """Fast-forward the whole mesh over a proven-quiescent span."""
        if target <= self._cycle:
            return
        for node in self.nodes:
            node.skip_to(target)
        self._cycle = target

    # -- robustness introspection (see repro.sim.watchdog) -------------------

    def progress_token(self):
        """Fingerprint that changes whenever any part of the mesh progresses."""
        return (
            self.fabric.messages_sent,
            self.fabric.in_flight,
            tuple(node.progress_token() for node in self.nodes),
        )

    def hang_snapshot(self) -> dict:
        """Diagnostic state attached to a :class:`SimulationHang`."""
        return {
            "cycle": self._cycle,
            "fabric_in_flight": self.fabric.in_flight,
            "nodes": {n.node_id: n.hang_snapshot() for n in self.nodes},
        }

    def check_invariants(self) -> None:
        """Per-node sanitizer sweeps plus mesh-wide request conservation.

        Each node checks its own occupancy bounds and link-token
        conservation (its local conservation check stays off because
        ``home_fn`` is set); the global check accounts for raws crossing
        the fabric: every issuer-map entry in the mesh matches exactly
        one raw in some node's containers or one fabric payload (a raw
        request heading to its home, or a completion pair heading back).
        """
        from repro.sim.watchdog import InvariantViolation

        for node in self.nodes:
            node.check_invariants()
        if any(node.device.injector is not None for node in self.nodes):
            return  # fault injection drops/duplicates responses by design
        issued = sum(len(node._issuer) for node in self.nodes)
        counted = sum(node.outstanding_raw_count() for node in self.nodes)
        for payload in self.fabric.pending_payloads():
            if isinstance(payload, MemoryRequest):
                if not payload.is_fence:
                    counted += 1  # raw request travelling to its home node
            else:
                counted += 1  # (target, raw) completion pair heading back
        if issued != counted:
            raise InvariantViolation(
                self._cycle,
                f"mesh request conservation broken: issuer maps hold {issued} "
                f"in-flight requests but containers+fabric hold {counted}",
            )

    def degraded_nodes(self) -> List[int]:
        """Nodes whose device lost at least one link to a hard fault."""
        return [n.node_id for n in self.nodes if n.degraded]

    def metrics(self) -> dict:
        """One flat namespaced dict over every stats source in the system.

        ``system.*`` carries :class:`SystemStats`; each node's full view
        (node/mac/arq/router/device/vaults/links/cores, see
        :meth:`repro.node.node.Node.metrics`) appears under
        ``node<id>.*``.
        """
        out = flatten(self.stats.snapshot(), "system.")
        for node in self.nodes:
            out.update(flatten(node.metrics(), f"node{node.node_id}."))
        return out

    def run(self, max_cycles: int = 50_000_000, engine=None) -> SystemStats:
        """Simulate until every node drains; returns the filled stats.

        ``engine`` selects the simulation engine (name or instance, see
        :mod:`repro.sim`); the default honours ``$REPRO_SIM_ENGINE`` and
        falls back to lockstep.
        """
        self._run_loop(max_cycles, engine=engine)
        st = self.stats
        st.cycles = self._cycle
        st.local_requests = sum(
            n.mac.request_router.stats.local for n in self.nodes
        )
        # Degraded-mode report: traffic was steered off dead links inside
        # each device; surface how much aggregate bandwidth that cost.
        st.failed_links = sum(len(n.device.failed_links) for n in self.nodes)
        total_links = sum(len(n.device.links) for n in self.nodes)
        st.link_bandwidth_loss = st.failed_links / total_links if total_links else 0.0
        st.poisoned_responses = sum(
            n.mac.response_router.poisoned_deliveries for n in self.nodes
        )
        st.reissued_packets = sum(
            n.mac.response_router.reissues for n in self.nodes
        )
        return st
