"""Multi-node NUMA system (paper Fig. 4, section 3).

Each node owns one 3D-stacked memory device; the physical address space
is interleaved across nodes at a configurable granularity.  Requests for
remote devices travel: local request router (Global Access Queue) ->
interconnect -> remote Remote Access Queue -> remote MAC -> remote HMC,
and the response retraces the path.  Remote traffic coalesces in the
*home* node's MAC together with that node's local traffic — the
generality claim of section 3.

Large meshes can be sharded across forked worker processes
(:mod:`repro.sim.pdes`): ``run(shards=k)`` — or ``REPRO_SIM_SHARDS`` —
partitions the nodes round-robin over ``k`` workers that advance in
conservative safe windows of the fabric latency, bit-identical to the
serial engines.  A restricted system (one shard's view of the mesh)
simulates only ``self._local_ids``; the fabric exports hops bound for
other shards and the PDES runner routes them at window barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.request import MemoryRequest
from repro.obs.attribution import NULL_ATTRIBUTION, StallCause
from repro.obs.protocol import StatsMixin

from repro.obs.metrics import flatten
from repro.obs.timeline import NULL_TIMELINE
from repro.obs.tracer import NULL_TRACER
from repro.sim import ClockedModel, register_wake_protocol

from .interconnect import Interconnect
from .node import Node


def interleaved_home(nodes: int, granularity: int = 1 << 12):
    """Address -> home-node mapping, interleaved at ``granularity`` bytes."""
    if nodes < 1:
        raise ValueError("need at least one node")
    if granularity & (granularity - 1):
        raise ValueError("granularity must be a power of two")
    shift = granularity.bit_length() - 1

    def home(addr: int) -> int:
        return (addr >> shift) % nodes

    return home


@dataclass
class SystemStats(StatsMixin):
    MERGE_MAX = frozenset({"cycles", "link_bandwidth_loss"})

    cycles: int = 0
    local_requests: int = 0
    remote_requests: int = 0
    responses: int = 0

    # Fabric flow control (credit-based interconnect).
    fabric_messages: int = 0
    fabric_credit_stalls: int = 0
    remote_backpressure_stalls: int = 0

    # Degraded-mode outcomes (all zero when fault injection is off).
    failed_links: int = 0
    link_bandwidth_loss: float = 0.0
    poisoned_responses: int = 0
    reissued_packets: int = 0
    response_timeouts: int = 0
    duplicate_responses: int = 0
    #: Remote completions that matched no waiting core — a duplicate of
    #: an already-delivered response, suppressed (and counted) exactly
    #: once instead of double-completing an LSQ entry.
    duplicate_remote_drops: int = 0


@register_wake_protocol
class NUMASystem(ClockedModel):
    """A small mesh of MAC-equipped nodes sharing one address space."""

    _overrun_msg = "system simulation exceeded max_cycles"

    def __init__(
        self,
        streams_per_node: Sequence[Sequence[Iterator[MemoryRequest]]],
        system: Optional[SystemConfig] = None,
        interconnect_latency: int = 120,
        interleave_bytes: int = 1 << 12,
        hmc_config=None,
        tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
        channel_capacity: int = 64,
        timeline=NULL_TIMELINE,
    ) -> None:
        n = len(streams_per_node)
        if n < 1:
            raise ValueError("need at least one node")
        self.tracer = tracer
        self.attrib = attrib
        self.timeline = timeline
        self.home = interleaved_home(n, interleave_bytes)
        self.nodes: List[Node] = []
        for nid, streams in enumerate(streams_per_node):
            node = Node(
                streams,
                system=system,
                hmc_config=hmc_config,
                node_id=nid,
                tracer=tracer,
                attrib=attrib,
            )
            # Rewire the request router with the shared home function.
            node.mac.request_router.home_fn = self.home
            self.nodes.append(node)
        self.fabric = Interconnect(interconnect_latency, channel_capacity)
        self.stats = SystemStats()
        self._cycle = 0
        #: Node ids simulated by this process (a subset under PDES).
        self._local_ids: List[int] = list(range(n))
        #: Filled by a sharded run (see :class:`repro.sim.pdes.ShardReport`).
        self.shard_report = None

    def restrict_to_shard(self, local_ids: Sequence[int]) -> None:
        """Confine this system to one shard's node subset (PDES worker).

        Ticking, quiescence probing, and skipping touch only the local
        nodes; fabric sends to other shards' nodes accumulate as exports
        for the window barrier.
        """
        self._local_ids = sorted(local_ids)
        self.fabric.restrict(self._local_ids)

    def done(self) -> bool:
        return (
            all(self.nodes[i].done() for i in self._local_ids)
            and self.fabric.in_flight == 0
        )

    def tick(self) -> None:
        cycle = self._cycle

        # Fabric arrivals: pump credit/admission state, then drain each
        # ready channel — raw requests into remote queues, response
        # payloads back to the requesting core.  A full Remote Access
        # Queue head-of-line blocks its channel (the hop keeps its slot
        # and retries next cycle) instead of bouncing across the fabric:
        # flow control stays local and deterministic.
        at = self.attrib
        fabric = self.fabric
        fabric.pump(cycle)
        for dst in fabric.ready_dsts():
            node = self.nodes[dst]
            while True:
                payload = fabric.peek(dst)
                if payload is None:
                    break
                if isinstance(payload, MemoryRequest):
                    if not node.mac.submit_remote(payload):
                        self.stats.remote_backpressure_stalls += 1
                        if at.enabled:
                            at.stall_span(
                                "fabric",
                                StallCause.RESPONSE_BACKPRESSURE,
                                cycle,
                                cycle + 1,
                            )
                        break
                    fabric.pop(dst, cycle)
                else:  # (target, raw) completion pair heading home
                    target, raw = fabric.pop(dst, cycle)
                    if node.deliver_completion(target, raw, cycle):
                        self.stats.responses += 1
                        if at.enabled:
                            m = raw.marks
                            if m is None:
                                m = raw.marks = {}
                            m["deliver"] = cycle
                            at.finalize(raw)
                    else:
                        self.stats.duplicate_remote_drops += 1

        # Per-node progress, with remote routing.
        for idx in self._local_ids:
            node = self.nodes[idx]
            node.tick()
            # Outbound remote raw requests.
            while True:
                req = node.mac.request_router.next_outbound()
                if req is None:
                    break
                self.stats.remote_requests += 1
                self.fabric.send(cycle, self.home(req.addr), req, src=idx)
            # Responses for remote requesters (collected by node.tick).
            for target, raw in node.pending_remote:
                self.fabric.send(cycle, raw.node, (target, raw), src=idx)
            node.pending_remote.clear()

        self._cycle += 1

    # -- quiescence skipping -------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which any part of the mesh acts.

        Wake sources: the fabric's earliest delivery and every node's own
        schedule.  Undrained outbound-remote traffic (possible only if a
        caller ticks a node outside :meth:`tick`) pins the system to
        lockstep rather than risking a missed send.
        """
        wake = self.fabric.next_event_cycle(now)
        if wake is not None and wake <= now:
            return now
        for idx in self._local_ids:
            node = self.nodes[idx]
            if not node.mac.request_router.global_queue.empty:
                return now
            w = node.next_event_cycle(now)
            if w is None:
                continue
            if w <= now:
                return now
            if wake is None or w < wake:
                wake = w
        return wake

    def skip_to(self, target: int) -> None:
        """Fast-forward the whole mesh over a proven-quiescent span."""
        if target <= self._cycle:
            return
        for idx in self._local_ids:
            self.nodes[idx].skip_to(target)
        self._cycle = target

    # -- robustness introspection (see repro.sim.watchdog) -------------------

    def progress_token(self):
        """Fingerprint that changes whenever any part of the mesh progresses."""
        return (
            self.fabric.messages_sent,
            self.fabric.in_flight,
            tuple(self.nodes[i].progress_token() for i in self._local_ids),
        )

    def hang_snapshot(self) -> dict:
        """Diagnostic state attached to a :class:`SimulationHang`."""
        return {
            "cycle": self._cycle,
            "fabric_in_flight": self.fabric.in_flight,
            "nodes": {
                i: self.nodes[i].hang_snapshot() for i in self._local_ids
            },
        }

    def check_invariants(self) -> None:
        """Per-node sanitizer sweeps plus mesh-wide request conservation.

        Each node checks its own occupancy bounds and link-token
        conservation (its local conservation check stays off because
        ``home_fn`` is set); the global check accounts for raws crossing
        the fabric: every issuer-map entry in the mesh matches exactly
        one raw in some node's containers or one fabric payload (a raw
        request heading to its home, or a completion pair heading back).
        The global check needs the whole mesh, so a shard-restricted
        system runs only the per-node sweeps.
        """
        from repro.sim.watchdog import InvariantViolation

        for idx in self._local_ids:
            self.nodes[idx].check_invariants()
        if len(self._local_ids) != len(self.nodes):
            return  # one shard cannot see raws held by the others
        if any(node.device.injector is not None for node in self.nodes):
            return  # fault injection drops/duplicates responses by design
        issued = sum(len(node._issuer) for node in self.nodes)
        counted = sum(node.outstanding_raw_count() for node in self.nodes)
        for payload in self.fabric.pending_payloads():
            if isinstance(payload, MemoryRequest):
                if not payload.is_fence:
                    counted += 1  # raw request travelling to its home node
            else:
                counted += 1  # (target, raw) completion pair heading back
        if issued != counted:
            raise InvariantViolation(
                self._cycle,
                f"mesh request conservation broken: issuer maps hold {issued} "
                f"in-flight requests but containers+fabric hold {counted}",
            )

    def degraded_nodes(self) -> List[int]:
        """Nodes whose device lost at least one link to a hard fault."""
        return [n.node_id for n in self.nodes if n.degraded]

    def metrics(self) -> dict:
        """One flat namespaced dict over every stats source in the system.

        ``system.*`` carries :class:`SystemStats`; each node's full view
        (node/mac/arq/router/device/vaults/links/cores, see
        :meth:`repro.node.node.Node.metrics`) appears under
        ``node<id>.*``.
        """
        out = flatten(self.stats.snapshot(), "system.")
        for node in self.nodes:
            out.update(flatten(node.metrics(), f"node{node.node_id}."))
        return out

    def timeline_probes(self):
        """System-wide rate probes plus every *local* node's (DESIGN 13).

        System-level probes are rate-only: under PDES each shard's
        restricted system holds disjoint partitions of these counters
        (remote sends count at the source shard, deliveries and
        backpressure at the destination shard), so summing per-epoch
        deltas at the merge reconstructs the serial series exactly.
        Node probes — including the level probes — are prefixed with the
        node id and registered only for ``self._local_ids``, so each one
        lives on exactly one shard.
        """
        stats = self.stats
        fabric = self.fabric
        probes = [
            ("system.remote_requests", "rate", lambda: stats.remote_requests),
            ("system.responses", "rate", lambda: stats.responses),
            (
                "system.backpressure_stalls",
                "rate",
                lambda: stats.remote_backpressure_stalls,
            ),
            ("fabric.messages", "rate", lambda: fabric.messages_sent),
            ("fabric.credit_stalls", "rate", lambda: fabric.credit_stalls),
        ]
        for idx in self._local_ids:
            prefix = f"node{idx}."
            for name, kind, fn in self.nodes[idx].timeline_probes():
                probes.append((prefix + name, kind, fn))
        return probes

    def shard_blockers(self) -> List[str]:
        """Why this system cannot shard (empty list = it can).

        Attribution pins the run to one process: stall spans watermark
        per shared site, so cross-shard merging would not be exact — and
        the bit-identity contract admits no "almost" (the shard-aware
        timeline, ``repro run --timeline-out``, is the time-resolved
        alternative that does shard).  Event tracing no longer blocks:
        shards collect events locally and the PDES parent merges them
        deterministically at collect time.
        """
        out: List[str] = []
        if len(self.nodes) < 2:
            out.append("fewer than two nodes")
        if self.fabric.latency_cycles < 1:
            out.append("zero-latency fabric leaves no lookahead window")
        if getattr(self.attrib, "enabled", False):
            out.append("attribution enabled")
        if self.fabric.in_flight:
            # Hand-seeded pre-run traffic (tests, replay harnesses) is
            # not re-partitioned: forking would clone it into every
            # shard instead of routing it to its owner.
            out.append("fabric holds pre-seeded in-flight traffic")
        return out

    def run(
        self,
        max_cycles: int = 50_000_000,
        engine=None,
        shards: Optional[int] = None,
    ) -> SystemStats:
        """Simulate until every node drains; returns the filled stats.

        ``engine`` selects the simulation engine (name or instance, see
        :mod:`repro.sim`); the default honours ``$REPRO_SIM_ENGINE`` and
        falls back to lockstep.  ``shards`` > 1 — defaulting to
        ``$REPRO_SIM_SHARDS`` — runs the mesh under conservative PDES
        (:mod:`repro.sim.pdes`), bit-identical to the serial engines;
        configurations that cannot shard (see :meth:`shard_blockers`)
        fall back to a serial run silently, so the env var is safe to
        set globally.
        """
        from repro.sim import pdes

        self.shard_report = None
        n_shards = min(pdes.resolve_shards(shards), len(self.nodes))
        if n_shards > 1 and not self.shard_blockers() and pdes.workers_available():
            try:
                self.shard_report = pdes.run_sharded(self, max_cycles, n_shards)
            except pdes.ShardFallback as exc:
                import warnings

                warnings.warn(
                    f"sharded run fell back to serial: {exc}", RuntimeWarning
                )
        if self.shard_report is None:
            self._run_loop(max_cycles, engine=engine)
        st = self.stats
        st.cycles = self._cycle
        st.local_requests = sum(
            n.mac.request_router.stats.local for n in self.nodes
        )
        st.fabric_messages = self.fabric.messages_sent
        st.fabric_credit_stalls = self.fabric.credit_stalls
        # Degraded-mode report: traffic was steered off dead links inside
        # each device; surface how much aggregate bandwidth that cost.
        st.failed_links = sum(len(n.device.failed_links) for n in self.nodes)
        total_links = sum(len(n.device.links) for n in self.nodes)
        st.link_bandwidth_loss = st.failed_links / total_links if total_links else 0.0
        st.poisoned_responses = sum(
            n.mac.response_router.poisoned_deliveries for n in self.nodes
        )
        st.reissued_packets = sum(
            n.mac.response_router.reissues for n in self.nodes
        )
        st.response_timeouts = sum(
            n.mac.response_router.timeouts for n in self.nodes
        )
        st.duplicate_responses = sum(
            n.mac.response_router.duplicates_suppressed for n in self.nodes
        )
        return st
