"""Cache-less multicore node and NUMA system models (paper section 3)."""

from .core import CoreStats, InOrderCore
from .interconnect import Hop, Interconnect
from .lsq import LoadStoreQueue
from .mt_core import MTCoreStats, MultithreadedCore
from .node import Node, NodeStats
from .spm import ScratchpadMemory
from .system import NUMASystem, SystemStats, interleaved_home

__all__ = [
    "CoreStats",
    "Hop",
    "InOrderCore",
    "Interconnect",
    "LoadStoreQueue",
    "MTCoreStats",
    "MultithreadedCore",
    "NUMASystem",
    "Node",
    "NodeStats",
    "ScratchpadMemory",
    "SystemStats",
    "interleaved_home",
]
