"""Load/store queue of one in-order core.

Pending memory operations wait here for their response; the response
router matches completions by (tid, tag) (paper section 3.3).  The LSQ
bounds each core's outstanding requests, which is what ultimately
throttles a core when the memory system backs up.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.request import MemoryRequest


class LoadStoreQueue:
    """Bounded table of in-flight memory operations for one core."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("LSQ needs at least one slot")
        self.capacity = capacity
        self._pending: Dict[Tuple[int, int], MemoryRequest] = {}
        self.inserted = 0
        self.completed = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._pending

    def insert(self, request: MemoryRequest) -> bool:
        """Track an issued request; False when the queue is full."""
        if self.full:
            return False
        key = (request.tid, request.tag)
        if key in self._pending:
            raise ValueError(f"duplicate in-flight (tid={request.tid}, tag={request.tag})")
        self._pending[key] = request
        self.inserted += 1
        return True

    def complete(self, tid: int, tag: int, cycle: int) -> Optional[MemoryRequest]:
        """Retire the matching request; returns it (or None if unknown)."""
        req = self._pending.pop((tid, tag), None)
        if req is not None:
            req.complete_cycle = cycle
            self.completed += 1
        return req

    def oldest(self) -> Optional[MemoryRequest]:
        if not self._pending:
            return None
        return min(self._pending.values(), key=lambda r: r.issue_cycle)
