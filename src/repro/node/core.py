"""Simple in-order core model (paper section 3).

Cores replay a per-thread trace of memory operations.  A core issues its
next operation when its LSQ has room, then — matching the paper's
stall-until-complete semantics — blocks once the LSQ fills or a fence is
outstanding.  Latency tolerance comes from *spatial* parallelism: other
cores keep issuing while one is stalled.

The default LSQ depth (64) models the temporal-multithreading extension
the paper sketches at the end of section 3: each core interleaves enough
hardware contexts to keep tens of requests outstanding, which is what
sustains the >2 requests/cycle offered load of Fig. 9 against ~100 ns
memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.request import MemoryRequest
from repro.obs.protocol import StatsMixin
from repro.sim import register_wake_protocol

from .lsq import LoadStoreQueue
from .spm import ScratchpadMemory


@dataclass
class CoreStats(StatsMixin):
    MERGE_MAX = frozenset({"finished_cycle"})

    issued: int = 0
    spm_hits: int = 0
    mac_requests: int = 0
    stall_cycles: int = 0
    fence_stalls: int = 0
    finished_cycle: int = -1


@register_wake_protocol
class InOrderCore:
    """One cache-less core replaying a memory-operation stream."""

    def __init__(
        self,
        core_id: int,
        stream: Iterator[MemoryRequest],
        spm: Optional[ScratchpadMemory] = None,
        lsq_capacity: int = 64,
        ops_between_mem: int = 0,
    ) -> None:
        self.core_id = core_id
        self._stream = iter(stream)
        self.spm = spm or ScratchpadMemory()
        self.lsq = LoadStoreQueue(lsq_capacity)
        #: Non-memory instructions between memory ops (issue pacing).
        self.ops_between_mem = max(ops_between_mem, 0)
        self.stats = CoreStats()
        self._next: Optional[MemoryRequest] = next(self._stream, None)
        self._cooldown = 0
        self._fence_pending = False
        self._last_issued: Optional[MemoryRequest] = None
        #: Requests displaced by a retry, LIFO (at most one deep in use).
        self._pushback: List[MemoryRequest] = []
        #: Completions of SPM hits scheduled (cycle, request).
        self._spm_retire: List[tuple] = []

    @property
    def done(self) -> bool:
        return self._next is None and self.lsq.empty and not self._spm_retire

    def tick(self, cycle: int) -> Optional[MemoryRequest]:
        """Advance one cycle; returns a request the node must route.

        The returned request is *tentative*: the caller must either let
        it stand (accepted downstream) or call :meth:`retry` so the core
        re-issues it next cycle.  SPM hits are absorbed internally and
        never returned.
        """
        # Retire due SPM accesses.
        if self._spm_retire:
            remaining = []
            for when, req in self._spm_retire:
                if when <= cycle:
                    self.lsq.complete(req.tid, req.tag, cycle)
                else:
                    remaining.append((when, req))
            self._spm_retire = remaining

        if self._fence_pending:
            if self.lsq.empty:
                self._fence_pending = False
            else:
                self.stats.fence_stalls += 1
                return None

        if self._cooldown > 0:
            self._cooldown -= 1
            return None

        if self._next is None:
            if self.done and self.stats.finished_cycle < 0:
                self.stats.finished_cycle = cycle
            return None

        if self.lsq.full:
            self.stats.stall_cycles += 1
            return None

        req = self._next
        if self._pushback:
            self._next = self._pushback.pop()
        else:
            self._next = next(self._stream, None)
        self._cooldown = self.ops_between_mem
        req.issue_cycle = cycle
        self.stats.issued += 1

        if req.is_fence:
            self._fence_pending = True
            self._last_issued = req
            return req  # the MAC must also observe the fence

        spm_latency = self.spm.access(req.addr)
        if spm_latency is not None:
            self.stats.spm_hits += 1
            self.lsq.insert(req)
            self._spm_retire.append((cycle + spm_latency, req))
            self._last_issued = None
            return None

        self.stats.mac_requests += 1
        self.lsq.insert(req)
        self._last_issued = req
        return req

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` this core can act on its own.

        ``now`` means the core is not skippable (it can issue, clear a
        fence, or stamp its finish cycle this very tick); a future cycle
        points at a scheduled SPM retirement or the end of an issue
        cooldown; ``None`` means the core is blocked and only an external
        response delivery (handled by the node's in-flight heap) can wake
        it.  Mirrors the branch order of :meth:`tick` exactly.
        """
        wake: Optional[int] = None
        if self._spm_retire:
            wake = min(when for when, _ in self._spm_retire)
            if wake <= now:
                return now
        if self._fence_pending:
            # Blocked until the LSQ drains (delivery or SPM retirement).
            return now if self.lsq.empty else wake
        if self._cooldown > 0:
            cooled = now + self._cooldown
            return cooled if wake is None else min(wake, cooled)
        if self._next is None:
            if self.done and self.stats.finished_cycle < 0:
                return now  # must tick once more to stamp finished_cycle
            return wake
        if self.lsq.full:
            return wake  # stalled until a response frees an LSQ slot
        return now  # ready to issue

    def skip(self, start: int, end: int) -> None:
        """Apply the per-cycle accounting of ticks [start, end) in bulk.

        Only called for windows the skip engine proved uneventful via
        :meth:`next_event_cycle`, so the branch taken by every skipped
        tick is the same one; replicate its counter/cooldown effect.
        """
        delta = end - start
        if self._fence_pending:
            if not self.lsq.empty:
                self.stats.fence_stalls += delta
            return
        if self._cooldown > 0:
            # next_event_cycle bounds the window, so this never underflows.
            self._cooldown -= delta
            return
        if self._next is not None and self.lsq.full:
            self.stats.stall_cycles += delta

    def retry(self) -> None:
        """Undo the issue returned by the last tick (downstream was full)."""
        req = self._last_issued
        if req is None:
            raise RuntimeError("nothing to retry")
        self._last_issued = None
        if req.is_fence:
            self._fence_pending = False
        else:
            self.lsq._pending.pop((req.tid, req.tag), None)
            self.lsq.inserted -= 1
            self.stats.mac_requests -= 1
        self.stats.issued -= 1
        # Put the request back at the head of the stream.
        if self._next is not None:
            self._pushback.append(self._next)
        self._next = req
        self._cooldown = 0

    def complete(self, tid: int, tag: int, cycle: int) -> bool:
        """Response delivery from the response router; True if matched."""
        return self.lsq.complete(tid, tag, cycle) is not None
