"""Node-to-node interconnect of the NUMA system (paper Fig. 4).

The paper leaves node-to-node transport out of scope; PR 1's fabric was
an ideal fixed-latency mailbox.  This version is an explicit credit-based
fabric in the shape of blue-rdma's credit/arbiter modules: the wire is
still fixed-latency and infinite-bandwidth (that latency is the PDES
lookahead, see :mod:`repro.sim.pdes`), but arrival at a destination is
flow-controlled — each destination owns a bounded *channel buffer* and a
credit counter, hops are admitted in a deterministic key order while
credits last, and a popped slot returns its credit one cycle later, so a
destination drains at most ``channel_capacity`` payloads per cycle.

Determinism contract (the PDES bit-identity hinge): every hop is keyed
``(deliver_cycle, src, seq, dst)`` where ``seq`` is a *per-source*
counter.  A node's send order is a pure function of its own state plus
the deliveries it has received, so per-source keys are identical whether
the senders live in one process or are sharded — global arbitration
(the heap order over those keys) then reconstructs one canonical
same-cycle order with no reference to insertion order.  The previous
single global sequence number made same-cycle ties an artifact of
*which process pushed first*; that is the bug this rewrite pins shut.

Sharding hooks: :meth:`restrict` declares which destinations are local
to this process.  Sends to non-local destinations accumulate in
``exports`` (drained at window barriers by the PDES runner) instead of
entering the wire; :meth:`inject` merges hops imported from other
shards.  Because hops carry their full key, a shard's wire heap orders
imported and locally sent hops exactly as the serial heap would.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.sim import register_wake_protocol


class Hop(NamedTuple):
    """One message in flight, ordered by its deterministic delivery key."""

    deliver_cycle: int
    src: int
    seq: int
    dst: int
    payload: Any


@register_wake_protocol
class Interconnect:
    """Fixed-latency wire feeding credit-gated per-destination channels.

    Args:
        latency_cycles: wire traversal time; also the PDES lookahead.
        channel_capacity: per-destination channel buffer depth (= the
            credit pool); bounds how many payloads one destination can
            accept per cycle.
    """

    def __init__(
        self, latency_cycles: int = 120, channel_capacity: int = 64
    ) -> None:
        if latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        if channel_capacity < 1:
            raise ValueError("channel capacity must be positive")
        self.latency_cycles = latency_cycles
        self.channel_capacity = channel_capacity
        #: Min-heap of hops on the wire, ordered by (cycle, src, seq, dst).
        self._wire: List[Hop] = []
        #: Per-source sequence counters (the deterministic tie-breaker).
        self._src_seq: Dict[int, int] = {}
        #: dst -> admitted payloads awaiting the consumer.
        self._channels: Dict[int, Deque[Any]] = {}
        #: dst -> hops that arrived but found no credit (admission order).
        self._stalled: Dict[int, Deque[Any]] = {}
        #: dst -> credits remaining (lazily initialised to capacity).
        self._credits: Dict[int, int] = {}
        #: Min-heap of (cycle, dst) credit returns not yet applied.
        self._credit_returns: List[Tuple[int, int]] = []
        #: Destinations local to this process (None = all of them).
        self._local: Optional[frozenset] = None
        #: Hops bound for other shards, drained at window barriers.
        self.exports: List[Hop] = []
        self.messages_sent = 0
        self.credit_stalls = 0
        self.exported = 0

    # -- send side -----------------------------------------------------------

    def send(self, cycle: int, dst: int, payload: Any, src: int = 0) -> None:
        """Inject a message at ``cycle`` for delivery to node ``dst``.

        ``src`` scopes the sequence counter: hops from one source are
        ordered by send order, hops from different sources by source id
        — never by which process happened to push first.
        """
        seq = self._src_seq.get(src, 0)
        self._src_seq[src] = seq + 1
        hop = Hop(cycle + self.latency_cycles, src, seq, dst, payload)
        self.messages_sent += 1
        if self._local is not None and dst not in self._local:
            self.exports.append(hop)
            self.exported += 1
        else:
            heapq.heappush(self._wire, hop)

    # -- arrival / flow control ----------------------------------------------

    def _credit(self, dst: int) -> int:
        return self._credits.setdefault(dst, self.channel_capacity)

    def _admit(self, dst: int, payload: Any) -> None:
        self._credits[dst] -= 1
        self._channels.setdefault(dst, deque()).append(payload)

    def pump(self, cycle: int) -> None:
        """Advance arrival/credit state to ``cycle``.

        Order is fixed so serial and sharded runs agree: (1) apply due
        credit returns, (2) promote stalled hops oldest-first while
        credits last, (3) pop wire arrivals in key order, admitting or
        stalling each.  Stalled hops always precede same-destination
        arrivals of a later pump — channel admission is FIFO per dst.
        """
        returned = set()
        while self._credit_returns and self._credit_returns[0][0] <= cycle:
            _, dst = heapq.heappop(self._credit_returns)
            self._credits[dst] = self._credit(dst) + 1
            returned.add(dst)
        for dst in sorted(returned):
            stalled = self._stalled.get(dst)
            while stalled and self._credits[dst] > 0:
                self._admit(dst, stalled.popleft())
        while self._wire and self._wire[0].deliver_cycle <= cycle:
            hop = heapq.heappop(self._wire)
            dst = hop.dst
            stalled = self._stalled.get(dst)
            if stalled or self._credit(dst) <= 0:
                self._stalled.setdefault(dst, deque()).append(hop.payload)
                self.credit_stalls += 1
            else:
                self._admit(dst, hop.payload)

    # -- consumer side -------------------------------------------------------

    def ready_dsts(self) -> List[int]:
        """Destinations with a non-empty channel, in ascending id order."""
        return sorted(d for d, q in self._channels.items() if q)

    def peek(self, dst: int) -> Optional[Any]:
        q = self._channels.get(dst)
        return q[0] if q else None

    def pop(self, dst: int, cycle: int) -> Any:
        """Consume the head of ``dst``'s channel; credit returns next cycle."""
        payload = self._channels[dst].popleft()
        heapq.heappush(self._credit_returns, (cycle + 1, dst))
        return payload

    def deliver(self, cycle: int) -> List[Tuple[int, Any]]:
        """Pump and drain every ready channel: (dst, payload) in key order.

        Convenience for single-consumer callers; at most
        ``channel_capacity`` payloads per destination per call (the
        credit pool), the remainder waiting for returned credits.
        """
        self.pump(cycle)
        out: List[Tuple[int, Any]] = []
        for dst in self.ready_dsts():
            q = self._channels[dst]
            while q:
                out.append((dst, self.pop(dst, cycle)))
        return out

    # -- sharding ------------------------------------------------------------

    def restrict(self, local_dsts: Iterable[int]) -> None:
        """Declare the destinations simulated in this process.

        Subsequent sends to other destinations land in ``exports``
        instead of the wire; the PDES runner routes them at the next
        window barrier.
        """
        self._local = frozenset(local_dsts)

    def inject(self, hops: Iterable[Tuple]) -> None:
        """Merge hops imported from other shards into the wire."""
        for hop in hops:
            heapq.heappush(self._wire, Hop(*hop))

    def drain_exports(self) -> List[Hop]:
        out = self.exports
        self.exports = []
        return out

    # -- introspection -------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return (
            len(self._wire)
            + len(self.exports)
            + sum(len(q) for q in self._channels.values())
            + sum(len(q) for q in self._stalled.values())
        )

    def pending_payloads(self) -> List[Any]:
        """Payloads anywhere in the fabric (introspection; arbitrary order)."""
        out = [hop.payload for hop in self._wire]
        out.extend(hop.payload for hop in self.exports)
        for q in self._channels.values():
            out.extend(q)
        for q in self._stalled.values():
            out.extend(q)
        return out

    # -- quiescence skipping -------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which the fabric can deliver.

        Undrained channel payloads pin the fabric to ``now``; stalled
        hops wake at their credit-return cycle; otherwise the wake is
        the wire head's delivery cycle — including one landing exactly
        on a skip target, which must be delivered, not swallowed.
        """
        for q in self._channels.values():
            if q:
                return now
        wake: Optional[int] = None
        if any(self._stalled.values()):
            # Channels empty + hops stalled => every consumed credit is
            # queued for return; the earliest return is the wake.
            wake = self._credit_returns[0][0] if self._credit_returns else now
        if self._wire:
            head = self._wire[0].deliver_cycle
            if wake is None or head < wake:
                wake = head
        if wake is None:
            return None
        return max(wake, now)

    def skip_to(self, target: int) -> None:
        """No per-cycle state: hops carry absolute delivery cycles and
        credit returns carry absolute due cycles, so skipping an idle
        span is a no-op — :meth:`pump` at the wake cycle applies both."""
