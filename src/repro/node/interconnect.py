"""Node-to-node interconnect of the NUMA system (paper Fig. 4).

The paper explicitly leaves node-to-node transport out of scope; this is
a deliberately simple fixed-latency, infinite-bandwidth fabric that
moves raw requests to a remote node's Remote Access Queue and response
payloads back.  It exists so the request/response routers' remote paths
are exercised end to end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.sim import register_wake_protocol


@dataclass(frozen=True, slots=True)
class Hop:
    """One message in flight: delivery cycle, destination node, payload."""

    deliver_cycle: int
    dst: int
    payload: Any


@register_wake_protocol
class Interconnect:
    """Fixed-latency point-to-point fabric between nodes."""

    def __init__(self, latency_cycles: int = 120) -> None:
        if latency_cycles < 0:
            raise ValueError("latency must be non-negative")
        self.latency_cycles = latency_cycles
        self._heap: List[Tuple[int, int, int, Any]] = []
        self._seq = 0
        self.messages_sent = 0

    def send(self, cycle: int, dst: int, payload: Any) -> None:
        """Inject a message at ``cycle`` for delivery to node ``dst``."""
        self._seq += 1
        heapq.heappush(
            self._heap, (cycle + self.latency_cycles, self._seq, dst, payload)
        )
        self.messages_sent += 1

    def deliver(self, cycle: int) -> List[Tuple[int, Any]]:
        """Pop every (dst, payload) whose delivery time has arrived."""
        out: List[Tuple[int, Any]] = []
        while self._heap and self._heap[0][0] <= cycle:
            _, _, dst, payload = heapq.heappop(self._heap)
            out.append((dst, payload))
        return out

    @property
    def in_flight(self) -> int:
        return len(self._heap)

    def pending_payloads(self) -> List[Any]:
        """Payloads currently in flight (introspection; arbitrary order)."""
        return [payload for _, _, _, payload in self._heap]

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Delivery cycle of the earliest in-flight message, if any."""
        if not self._heap:
            return None
        return max(self._heap[0][0], now)
