"""Scratchpad memory (SPM) model (paper section 3).

Each core owns a directly addressed, software-managed scratchpad: no
tags, no TLB, no coherence — an address range either is or is not mapped
into the SPM by software.  Accesses that hit a mapped range complete at
SPM latency (1 ns, Table 1); everything else goes to the MAC.

The model tracks explicitly mapped regions (the software's prefetch /
write-back decisions) plus a capacity accountant so tests can assert the
1 MB budget is honoured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class ScratchpadMemory:
    """One core-private SPM."""

    def __init__(self, capacity_bytes: int = 1 << 20, latency_cycles: int = 3):
        if capacity_bytes < 1:
            raise ValueError("SPM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.latency_cycles = latency_cycles
        #: Mapped regions: base -> size, kept non-overlapping.
        self._regions: Dict[int, int] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0

    # -- software management ---------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def map(self, base: int, size: int) -> None:
        """Map a memory range into the SPM (the prefetch target).

        Raises when the budget is exceeded or the range overlaps an
        existing mapping.
        """
        if size < 1:
            raise ValueError("mapping size must be positive")
        if size > self.free_bytes:
            raise MemoryError(
                f"SPM over capacity: {size} B requested, {self.free_bytes} B free"
            )
        for rbase, rsize in self._regions.items():
            if base < rbase + rsize and rbase < base + size:
                raise ValueError("mapping overlaps an existing SPM region")
        self._regions[base] = size
        self._used += size

    def unmap(self, base: int) -> int:
        """Release a mapping (after write-back); returns its size."""
        size = self._regions.pop(base, None)
        if size is None:
            raise KeyError(f"no SPM mapping at {base:#x}")
        self._used -= size
        return size

    def mapped_regions(self) -> List[Tuple[int, int]]:
        return sorted(self._regions.items())

    # -- access path -------------------------------------------------------------

    def contains(self, addr: int) -> bool:
        for rbase, rsize in self._regions.items():
            if rbase <= addr < rbase + rsize:
                return True
        return False

    def access(self, addr: int) -> Optional[int]:
        """Latency of an SPM access, or None when the address is unmapped."""
        if self.contains(addr):
            self.hits += 1
            return self.latency_cycles
        self.misses += 1
        return None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
