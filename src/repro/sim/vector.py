"""Vectorized busy-phase kernels (DESIGN.md section 10).

The dense inner loops of the busy phase — the builder's FLIT-map
OR-reduction, the ARQ's all-entries comparator match, and strided
bank-timing queries across a vault's banks — are batched here as
array-style kernels.  Each kernel has a pure-Python fallback with
identical results, so the vectorized path is an optimization, never a
semantic switch: the hypothesis equivalence suite runs the suite with
the kernels both on and off and asserts bit-identical outcomes.

Gating: ``REPRO_SIM_VECTOR`` (default on).  Set ``REPRO_SIM_VECTOR=0``
to force the pure-Python fallbacks — CI runs tier-1 both ways.  When
numpy is unavailable the fallbacks are used regardless of the flag.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy ships with the toolchain; degrade gracefully without it.
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain always has numpy
    _np = None

#: Environment knob: ``REPRO_SIM_VECTOR=0`` disables the numpy kernels.
VECTOR_ENV_VAR = "REPRO_SIM_VECTOR"

#: Kernel-dispatch counters for the self-profiler (how often each
#: vectorized path actually fired).  Incremented only while a
#: :class:`repro.obs.profiler.SimProfiler` has switched profiling on —
#: the hot kernels stay increment-free on unprofiled runs.
_PROFILING = False
_COUNTS: Dict[str, int] = {
    "group_bits": 0,
    "oldest_match": 0,
    "busy_count": 0,
    "max_ready": 0,
}


def set_profiling(flag: bool) -> None:
    """Switch kernel hit counting on or off (profiler lifecycle hook)."""
    global _PROFILING
    _PROFILING = bool(flag)


def kernel_counters() -> Dict[str, int]:
    """Snapshot of the per-kernel vectorized-dispatch counts."""
    return dict(_COUNTS)


def reset_kernel_counters() -> None:
    """Zero the dispatch counters (tests and fresh profiling sessions)."""
    for key in _COUNTS:
        _COUNTS[key] = 0


def have_numpy() -> bool:
    """Whether numpy is importable in this environment."""
    return _np is not None


def enabled() -> bool:
    """Whether the vectorized kernels are active (env-gated, default on)."""
    if _np is None:
        return False
    return os.environ.get(VECTOR_ENV_VAR, "1") not in ("", "0")


# ---------------------------------------------------------------------------
# FLIT-map OR-reduction (builder stage 1)
# ---------------------------------------------------------------------------

#: (nflits, groups) -> lookup table mapping a FLIT bitmap to its group
#: bits.  For the paper geometry (16 FLITs, 4 groups) the table has
#: 65536 single-byte entries; building it is a one-time vectorized
#: sweep, and every stage-1 OR-reduction afterwards is one array index.
_GROUP_TABLES: Dict[Tuple[int, int], object] = {}

#: Don't table geometries wider than this (table size 2**nflits).
_MAX_TABLE_FLITS = 16


def _build_group_table(nflits: int, groups: int):
    per = nflits // groups
    mask = (1 << per) - 1
    if _np is not None:
        maps = _np.arange(1 << nflits, dtype=_np.uint32)
        out = _np.zeros(1 << nflits, dtype=_np.uint8)
        for g in range(groups):
            out |= (((maps >> (g * per)) & mask) != 0).astype(_np.uint8) << g
        return out
    table = bytearray(1 << nflits)
    for bits in range(1 << nflits):
        acc = 0
        for g in range(groups):
            if (bits >> (g * per)) & mask:
                acc |= 1 << g
        table[bits] = acc
    return bytes(table)


def group_bits(bits: int, nflits: int, groups: int) -> int:
    """OR-reduce a FLIT bitmap into ``groups`` group bits.

    Exactly :meth:`repro.core.flit.FlitMap.group_bits`, served from a
    precomputed lookup table when the kernels are enabled and the
    geometry is tableable; the caller falls back to the loop otherwise.
    """
    key = (nflits, groups)
    table = _GROUP_TABLES.get(key)
    if table is None:
        table = _build_group_table(nflits, groups)
        _GROUP_TABLES[key] = table
    if _PROFILING:
        _COUNTS["group_bits"] += 1
    return int(table[bits])


def group_table_ready(nflits: int, groups: int) -> bool:
    """Whether the table path applies to this geometry under the gate."""
    return (
        enabled()
        and nflits <= _MAX_TABLE_FLITS
        and groups >= 1
        and nflits % groups == 0
    )


# ---------------------------------------------------------------------------
# ARQ comparator match (all entries at once)
# ---------------------------------------------------------------------------


def oldest_match(keys: Sequence[int], key: int) -> Optional[int]:
    """Index of the *oldest* (lowest-index) entry whose key matches.

    The hardware comparator bank compares the candidate key against all
    ARQ entries simultaneously and a priority encoder picks the oldest
    hit; this is the argmax-style batch form of that match.  ``keys``
    is the comparator-visible key per entry, oldest first, with
    non-mergeable slots masked out as ``None``.
    """
    if _np is not None and enabled() and len(keys) >= 8:
        if _PROFILING:
            _COUNTS["oldest_match"] += 1
        arr = _np.fromiter(
            (k if k is not None else -(1 << 62) for k in keys),
            dtype=_np.int64,
            count=len(keys),
        )
        hits = _np.nonzero(arr == key)[0]
        return int(hits[0]) if hits.size else None
    for i, k in enumerate(keys):
        if k == key:
            return i
    return None


# ---------------------------------------------------------------------------
# Strided bank-timing queries (vault/device introspection)
# ---------------------------------------------------------------------------


def busy_count(ready_cycles: Sequence[int], now: int) -> int:
    """How many of the given next-free stamps are still in the future."""
    if _np is not None and enabled() and len(ready_cycles) >= 8:
        if _PROFILING:
            _COUNTS["busy_count"] += 1
        return int(
            (_np.fromiter(ready_cycles, dtype=_np.int64, count=len(ready_cycles)) > now).sum()
        )
    return sum(1 for r in ready_cycles if r > now)


def max_ready(ready_cycles: Sequence[int]) -> int:
    """Latest next-free stamp across a strided bank-timing array."""
    if _np is not None and enabled() and len(ready_cycles) >= 8:
        if _PROFILING:
            _COUNTS["max_ready"] += 1
        return int(
            _np.fromiter(ready_cycles, dtype=_np.int64, count=len(ready_cycles)).max()
        )
    return max(ready_cycles, default=0)


def clear_tables() -> None:
    """Drop cached lookup tables (tests that flip the env var use this)."""
    _GROUP_TABLES.clear()


__all__ = [
    "VECTOR_ENV_VAR",
    "have_numpy",
    "enabled",
    "group_bits",
    "group_table_ready",
    "oldest_match",
    "busy_count",
    "max_ready",
    "clear_tables",
    "set_profiling",
    "kernel_counters",
    "reset_kernel_counters",
]
