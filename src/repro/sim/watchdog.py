"""Simulation watchdog and invariant sanitizer.

Two failure modes of a cycle-accurate model are invisible to the test
suite until a run wedges in CI: *livelock* (the loop keeps ticking but
no component makes progress — a deadlocked credit loop, a response that
was dropped without a timeout armed) and *silent corruption* (a queue
over its capacity, a retry token leaked, a raw request that vanished
between submission and completion).  This module watches for both from
inside the run engines (:mod:`repro.sim.kernel`) without perturbing the
simulation:

* **Hang detection** — always on (cheap).  If a model's
  ``progress_token()`` fingerprint is unchanged for ``stall_cycles``
  consecutive cycles *and* the model schedules no future wake
  (``next_event_cycle(now) <= now``), the run raises
  :class:`SimulationHang` carrying the model's ``hang_snapshot()``: queue
  depths, in-flight counts, ARQ occupancy, link retry-token levels —
  everything needed to debug the wedge post-mortem.  A scheduled future
  wake (e.g. a fault-retry timeout deadline several hundred cycles out)
  resets the stall timer, so retry backoff stalls never false-positive.
* **Invariant sanitizer** — opt-in via ``REPRO_SIM_CHECK=1``.  Every
  ``check_interval`` ticks the engine calls the model's
  ``check_invariants()``: request conservation (in == out + in-flight),
  ARQ/link retry-token conservation, LSQ/FIFO occupancy bounds.  The
  watchdog itself checks monotone cycle stamps.  Violations raise
  :class:`InvariantViolation` at the offending cycle instead of
  corrupting metrics thousands of cycles later.

Both follow the NULL-object pattern used by tracing and attribution:
with both knobs off the engines hold :data:`NULL_WATCHDOG` and the hot
loop pays a single attribute test per iteration, so results are
bit-identical with the watchdog disabled (and with it enabled —
observation never mutates model state).

Models opt in by implementing any of the (all optional) hooks:

``progress_token()``
    Hashable fingerprint that changes whenever the model made forward
    progress.  Models without it are never hang-checked.
``hang_snapshot()``
    JSON-able diagnostic dict attached to :class:`SimulationHang`.
``check_invariants()``
    Raise :class:`InvariantViolation` on any broken invariant.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

#: Stall budget (cycles without progress) before declaring a hang.  Large
#: enough that the slowest legitimate quiet span in the models — a full
#: link-retry timeout plus ARQ drain — cannot trip it.
DEFAULT_STALL_CYCLES = 250_000

#: How many observed ticks between sanitizer probes (hang checks run on
#: the same cadence; staleness is measured in cycles, not probes).
DEFAULT_CHECK_INTERVAL = 512

#: Environment knobs: ``REPRO_SIM_CHECK=1`` arms the invariant sanitizer;
#: ``REPRO_SIM_WATCHDOG=<cycles>`` overrides the stall budget (0 disables
#: hang detection entirely).
CHECK_ENV_VAR = "REPRO_SIM_CHECK"
WATCHDOG_ENV_VAR = "REPRO_SIM_WATCHDOG"


class SimulationHang(RuntimeError):
    """The simulation stopped making progress without being done.

    Carries the cycle at which the hang was declared, how long the model
    had been stalled, and the model's diagnostic ``hang_snapshot()``.
    """

    def __init__(self, cycle: int, stalled_cycles: int, snapshot: Dict[str, Any]):
        self.cycle = cycle
        self.stalled_cycles = stalled_cycles
        self.snapshot = snapshot
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(snapshot.items()))
        super().__init__(
            f"simulation hang at cycle {cycle}: no progress for "
            f"{stalled_cycles} cycles and no scheduled wake"
            + (f" [{detail}]" if detail else "")
        )


class InvariantViolation(RuntimeError):
    """A simulation invariant does not hold (sanitizer mode only)."""

    def __init__(self, cycle: int, message: str):
        self.cycle = cycle
        super().__init__(f"invariant violation at cycle {cycle}: {message}")


class _NullWatchdog:
    """Disabled watchdog: one ``enabled`` test per engine iteration."""

    enabled = False

    def reset(self) -> None:  # pragma: no cover - never called when disabled
        pass

    def observe(self, sim) -> None:  # pragma: no cover - never called
        pass

    def finish(self, sim) -> None:  # pragma: no cover - never called
        pass


#: Shared disabled instance (stateless, safe to share).
NULL_WATCHDOG = _NullWatchdog()


class Watchdog:
    """Engine-side observer implementing hang detection + sanitizing.

    One instance is owned by one engine ``run()`` at a time; ``reset()``
    is called at loop entry so an engine instance can be reused.
    """

    enabled = True

    def __init__(
        self,
        stall_cycles: int = DEFAULT_STALL_CYCLES,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        sanitize: bool = False,
    ):
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.stall_cycles = stall_cycles
        self.check_interval = check_interval
        self.sanitize = sanitize
        self.reset()

    def reset(self) -> None:
        self._ticks = 0
        self._last_token: Any = None
        self._last_progress_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None

    # -- per-iteration hook (called by the engines) --------------------------

    def observe(self, sim) -> None:
        """Observe one engine iteration of ``sim``; raise on hang/violation.

        Read-only: never mutates ``sim``, so enabling the watchdog cannot
        change simulation results.
        """
        cycle = sim.cycle
        if self.sanitize:
            if self._last_cycle is not None and cycle < self._last_cycle:
                raise InvariantViolation(
                    cycle,
                    f"cycle counter moved backwards ({self._last_cycle} -> {cycle})",
                )
            self._last_cycle = cycle
        self._ticks += 1
        if self._ticks % self.check_interval:
            return
        self._probe(sim, cycle)

    def _probe(self, sim, cycle: int) -> None:
        if self.sanitize:
            check = getattr(sim, "check_invariants", None)
            if check is not None:
                check()
        if not self.stall_cycles:
            return
        token_fn = getattr(sim, "progress_token", None)
        if token_fn is None:
            return  # model did not opt in to hang detection
        token = token_fn()
        if token != self._last_token or self._last_progress_cycle is None:
            self._last_token = token
            self._last_progress_cycle = cycle
            return
        # No visible progress since the last probe.  A scheduled future
        # wake (fault-retry deadline, blocked core's completion cycle)
        # means the model is legitimately waiting — restart the timer.
        wake = sim.next_event_cycle(cycle)
        if wake is not None and wake > cycle:
            self._last_progress_cycle = cycle
            return
        stalled = cycle - self._last_progress_cycle
        if stalled >= self.stall_cycles:
            snapshot_fn = getattr(sim, "hang_snapshot", None)
            snapshot = snapshot_fn() if snapshot_fn is not None else {}
            raise SimulationHang(cycle, stalled, snapshot)

    def finish(self, sim) -> None:
        """Final sanitizer sweep when the run loop exits normally."""
        if self.sanitize:
            check = getattr(sim, "check_invariants", None)
            if check is not None:
                check()


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SIM_CHECK`` arms the invariant sanitizer."""
    return os.environ.get(CHECK_ENV_VAR, "") not in ("", "0")


def default_watchdog():
    """Watchdog instance for an engine constructed without one.

    Returns :data:`NULL_WATCHDOG` (zero overhead) unless the environment
    opts in: ``REPRO_SIM_CHECK=1`` arms the sanitizer and/or
    ``REPRO_SIM_WATCHDOG=<cycles>`` sets a hang budget.  With both unset
    the engines behave exactly as before this module existed.
    """
    sanitize = sanitize_enabled()
    stall_env = os.environ.get(WATCHDOG_ENV_VAR, "")
    if not sanitize and not stall_env:
        return NULL_WATCHDOG
    stall = int(stall_env) if stall_env else DEFAULT_STALL_CYCLES
    return Watchdog(stall_cycles=stall, sanitize=sanitize)
