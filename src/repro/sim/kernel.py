"""Shared simulation kernel: the ``Clocked`` protocol and run engines.

Every top-level clocked model in the reproduction — :class:`repro.core.mac.MAC`,
:class:`repro.node.node.Node`, :class:`repro.node.system.NUMASystem` — used to
carry its own copy of the same ``_cycle`` counter, ``cycle`` property,
``done()`` predicate and ``while not done(): tick()`` loop.  This module owns
that machinery once, and adds the piece the lockstep loops could never
express: *quiescence skipping*.

Two interchangeable engines drive a :class:`ClockedModel`:

* :class:`LockstepEngine` — exactly the historical semantics: one ``tick()``
  per cycle until ``done()``, with the model's max-cycles guard.
* :class:`SkipEngine` — after each tick it asks the model for its earliest
  *wake event* (``next_event_cycle``).  When the model reports that nothing
  non-uniform can happen before cycle ``w`` (all cores blocked on an
  in-flight memory response, MAC drained, fabric empty, no timeout due), the
  engine calls ``skip_to(w)``: the model bulk-applies the per-cycle
  accounting the skipped ticks would have performed (stall counters, idle
  counters, cooldown drains, strided attribution samples) and jumps its
  cycle counter.  The contract — enforced by the equivalence property tests —
  is that a skip is **bit-identical** to ticking through the gap: same final
  cycle count, same ``metrics()`` snapshot, same attribution marks, with or
  without fault injection.

Engine selection:  pass an engine instance or name (``"lockstep"`` /
``"skip"``) to any ``run()``; ``None`` falls back to the ``REPRO_SIM_ENGINE``
environment variable, then to lockstep.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, List, Optional, Protocol, runtime_checkable

from repro.obs.profiler import NULL_PROFILER
from repro.obs.timeline import NULL_TIMELINE

from .watchdog import default_watchdog

#: Environment variable consulted when no engine is given explicitly.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"


#: Every component class participating in the per-component wake
#: protocol registers here (via :func:`register_wake_protocol`).  The
#: registry exists because ``ClockedModel.next_event_cycle`` defaults to
#: ``now`` — safe (never skips) but silent: one component forgetting to
#: override it disables skipping system-wide with no visible symptom
#: except lost speed.  The sanitizer (``REPRO_SIM_CHECK=1``) and a unit
#: test audit the registry so that failure mode is loud.
WAKE_PROTOCOL_REGISTRY: List[type] = []


def register_wake_protocol(cls):
    """Class decorator: enroll ``cls`` in the wake-protocol audit."""
    WAKE_PROTOCOL_REGISTRY.append(cls)
    return cls


def wake_protocol_offenders(cls=None) -> List[type]:
    """Registered classes that still use the never-skip default.

    A class offends when it neither defines its own ``next_event_cycle``
    nor inherits one from anywhere other than :class:`ClockedModel`'s
    default (which is tagged ``_default_wake``).  Pass ``cls`` to audit
    a single class instead of the whole registry.
    """
    targets = [cls] if cls is not None else WAKE_PROTOCOL_REGISTRY
    offenders = []
    for target in targets:
        fn = getattr(target, "next_event_cycle", None)
        if fn is None or getattr(fn, "_default_wake", False):
            offenders.append(target)
    return offenders


def _warn_default_wake(sim) -> None:
    """Sanitizer warning for a model running on the never-skip default."""
    cls = type(sim)
    if wake_protocol_offenders(cls):
        warnings.warn(
            f"{cls.__module__}.{cls.__qualname__} does not override "
            "ClockedModel.next_event_cycle; the skip engine will never "
            "skip while it is in the loop (lockstep-equivalent but slow)",
            RuntimeWarning,
            stacklevel=3,
        )


@runtime_checkable
class Clocked(Protocol):
    """A component advanced by an external clock.

    ``tick(cycle)`` advances one cycle; ``idle()`` reports whether the
    component has buffered work; ``next_event_cycle(now)`` reports the
    earliest cycle >= ``now`` at which ticking could change externally
    visible state (``None`` = no self-scheduled wake; the component only
    reacts to external events such as a response delivery).
    """

    def tick(self, cycle: int): ...

    def idle(self) -> bool: ...

    def next_event_cycle(self, now: int) -> Optional[int]: ...


class ClockedModel:
    """Base class for top-level simulations (MAC, Node, NUMASystem).

    Owns the cycle counter and the run loop; subclasses implement
    ``done()`` and ``tick()``, and — to benefit from :class:`SkipEngine` —
    override ``next_event_cycle``/``skip_to``.  The default
    ``next_event_cycle`` returns ``now`` (never skip), so a model that has
    not opted in behaves identically under either engine.
    """

    #: RuntimeError message raised when the max-cycles guard fires.
    _overrun_msg = "simulation exceeded max_cycles"

    _cycle: int = 0

    #: Cycle-windowed telemetry sampler, pumped by the engines at epoch
    #: boundaries (class-level NULL default; models that accept a
    #: ``timeline=`` kwarg rebind per instance).  Read-only observer:
    #: enabling it never changes simulation results.
    timeline = NULL_TIMELINE

    #: Wall-clock self-profiler (tick/skip counts, engine wall time);
    #: assigned per instance by ``repro run --profile`` style callers.
    profiler = NULL_PROFILER

    @property
    def cycle(self) -> int:
        return self._cycle

    def done(self) -> bool:
        raise NotImplementedError

    def tick(self):
        raise NotImplementedError

    # -- quiescence skipping (opt-in) ----------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle >= ``now`` at which a non-uniform event can occur.

        Returning ``now`` disables skipping for this step; ``None`` means
        the model schedules no wake of its own (the engine then falls back
        to single-stepping, preserving lockstep behaviour — including the
        max-cycles guard — on models that would otherwise spin forever).

        This default is deliberately conservative — and therefore a
        silent performance trap: a registered component relying on it
        disables skipping system-wide.  The sanitizer warns (see
        :func:`wake_protocol_offenders`).
        """
        return now

    next_event_cycle._default_wake = True  # tagged for the registry audit

    def skip_to(self, target: int) -> None:
        """Fast-forward to ``target``, bulk-applying per-cycle accounting.

        Only called by :class:`SkipEngine`, and only with
        ``self.cycle < target <= next_event_cycle(self.cycle)``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} reported a wake event but does not "
            "implement skip_to"
        )

    # -- run loop ------------------------------------------------------------

    def _run_loop(
        self,
        max_cycles: int,
        engine=None,
        on_tick: Optional[Callable[[list], None]] = None,
        relative: bool = False,
    ) -> int:
        """Drive this model with ``engine`` until ``done()``.

        ``on_tick`` receives any non-empty value returned by ``tick()``
        (the MAC emits packets from its tick).  With ``relative`` the
        max-cycles budget counts from the current cycle instead of zero —
        the MAC's historical drain guard.
        """
        return get_engine(engine).run(
            self, max_cycles, on_tick=on_tick, relative=relative
        )


class LockstepEngine:
    """One ``tick()`` per cycle — the extracted historical semantics."""

    name = "lockstep"

    def __init__(self, watchdog=None):
        #: Hang detector / invariant sanitizer observing each iteration
        #: (read-only; NULL_WATCHDOG unless configured — see
        #: :mod:`repro.sim.watchdog`).
        self.watchdog = watchdog if watchdog is not None else default_watchdog()

    def run(
        self,
        sim: ClockedModel,
        max_cycles: int,
        on_tick: Optional[Callable[[list], None]] = None,
        relative: bool = False,
    ) -> int:
        start = sim.cycle if relative else 0
        wd = self.watchdog
        if wd.enabled:
            wd.reset()
        tl = getattr(sim, "timeline", NULL_TIMELINE)
        prof = getattr(sim, "profiler", NULL_PROFILER)
        observed = tl.enabled or prof.enabled
        if tl.enabled:
            tl.bind(sim)
        if prof.enabled:
            prof.run_started(self.name)
        while not sim.done():
            out = sim.tick()
            if on_tick is not None and out:
                on_tick(out)
            if observed:
                if tl.enabled:
                    tl.pump(sim.cycle)
                prof.note_tick()
            if wd.enabled:
                wd.observe(sim)
            if sim.cycle - start > max_cycles:
                raise RuntimeError(sim._overrun_msg)
        if observed:
            if tl.enabled:
                tl.finish(sim.cycle)
            prof.run_finished(sim.cycle)
        if wd.enabled:
            wd.finish(sim)
        return sim.cycle


class SkipEngine:
    """Event-wheel scheduler: fast-forwards through quiescent spans.

    Bit-identical to :class:`LockstepEngine` by construction: a skip is
    taken only when the model proves, via ``next_event_cycle``, that every
    cycle in the gap would have been a no-op apart from uniform per-cycle
    accounting, which ``skip_to`` applies in bulk.
    """

    name = "skip"

    def __init__(self, watchdog=None):
        #: See :class:`LockstepEngine.watchdog`.
        self.watchdog = watchdog if watchdog is not None else default_watchdog()

    def run(
        self,
        sim: ClockedModel,
        max_cycles: int,
        on_tick: Optional[Callable[[list], None]] = None,
        relative: bool = False,
    ) -> int:
        start = sim.cycle if relative else 0
        limit = start + max_cycles
        wd = self.watchdog
        if wd.enabled:
            wd.reset()
            if getattr(wd, "sanitize", False):
                _warn_default_wake(sim)
        tl = getattr(sim, "timeline", NULL_TIMELINE)
        prof = getattr(sim, "profiler", NULL_PROFILER)
        observed = tl.enabled or prof.enabled
        if tl.enabled:
            tl.bind(sim)
        if prof.enabled:
            prof.run_started(self.name)
        # The wake probe runs every tick.  The per-component event wheel
        # keeps ``next_event_cycle`` O(1) on the hot models (Node tracks
        # its earliest wake incrementally instead of walking every core),
        # so probing each cycle is cheap — and it catches the short
        # quiescent pockets inside busy phases that the old exponential
        # probe backoff (probe every <=64 ticks) used to sail past.
        while not sim.done():
            out = sim.tick()
            if on_tick is not None and out:
                on_tick(out)
            if observed:
                if tl.enabled:
                    tl.pump(sim.cycle)
                prof.note_tick()
            if wd.enabled:
                wd.observe(sim)
            if sim.cycle - start > max_cycles:
                raise RuntimeError(sim._overrun_msg)
            wake = sim.next_event_cycle(sim.cycle)
            if wake is not None and wake > sim.cycle:
                # Never skip past the guard: lockstep raises with the
                # counter at limit + 1, and so must we.
                before = sim.cycle
                sim.skip_to(min(wake, limit))
                if observed:
                    # A boundary landing exactly on the skip target is
                    # sampled here, before the next tick — the same
                    # pre-tick ordering lockstep gives it.
                    if tl.enabled:
                        tl.pump(sim.cycle)
                    prof.note_skip(sim.cycle - before)
        if observed:
            if tl.enabled:
                tl.finish(sim.cycle)
            prof.run_finished(sim.cycle)
        if wd.enabled:
            wd.finish(sim)
        return sim.cycle


#: Engine registry, keyed by CLI-facing name.
ENGINES = {
    LockstepEngine.name: LockstepEngine,
    SkipEngine.name: SkipEngine,
}

DEFAULT_ENGINE = LockstepEngine.name


def engine_names() -> List[str]:
    """CLI-facing engine names, default first."""
    return sorted(ENGINES, key=lambda n: n != DEFAULT_ENGINE)


def get_engine(spec=None):
    """Resolve an engine instance from a name, instance, or the environment.

    ``None`` consults ``$REPRO_SIM_ENGINE`` (so a whole test suite can run
    under the skip engine without touching call sites), then defaults to
    lockstep.  Unknown names raise ``ValueError``.
    """
    if spec is None:
        spec = os.environ.get(ENGINE_ENV_VAR) or DEFAULT_ENGINE
    if isinstance(spec, str):
        try:
            return ENGINES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown simulation engine {spec!r} "
                f"(choose from {', '.join(sorted(ENGINES))})"
            ) from None
    if hasattr(spec, "run"):
        return spec
    raise TypeError(f"engine must be a name or engine instance, got {spec!r}")
