"""Conservative parallel discrete-event simulation of the NUMA mesh.

The mesh decomposes cleanly: within one cycle a node's evolution depends
only on its own components plus fabric deliveries into it, and every
fabric hop takes ``Interconnect.latency_cycles`` (L) wire cycles.  L is
therefore a *lookahead*: a hop sent at cycle c in the window
``[W, W+L)`` delivers at ``c+L >= W+L`` — never inside the window — so
once a shard holds every hop delivering before ``W+L``, it can advance
to ``W+L`` without hearing from anyone.  That is the whole scheme:

1. nodes are partitioned round-robin over forked worker processes;
2. the parent announces a window ``[start, start+L)`` and forwards each
   shard the previously exported hops delivering inside it;
3. each shard advances through the window on its own quiescence-skipping
   loop (the SkipEngine wheel: probe, skip to the wake, tick);
4. shards return hops addressed to other shards plus their next wake,
   and the parent picks the next window start — the earliest wake or
   pending delivery, so idle stretches are skipped globally too.

Determinism: hops carry ``(deliver_cycle, src, seq, dst)`` keys with
per-source sequence numbers (see :mod:`repro.node.interconnect`), so
per-destination delivery order is a pure function of message identity —
the barrier exchange cannot reorder anything observably.  Shard runs
are bit-identical to the serial engines; the equivalence suite in
``tests/sim/test_shard_equivalence.py`` enforces it.

Worker management follows :mod:`repro.eval.parallel` /
:mod:`repro.eval.supervisor`: fork start method (request streams are
plain objects in the child, nothing is pickled on the way in), pipe
EOF as the dead-worker signal, and crash recovery by rerunning — the
parent's system object is never mutated until a run succeeds, so a
SIGKILL-ed shard costs one restart, not a wrong answer.

Observability shards with the mesh: each worker samples its restricted
system's timeline probes and buffers its own trace events locally, and
the parent merges both deterministically at collect time — timelines in
shard order (per-epoch rate deltas sum; level series live on exactly one
shard), traces by :func:`repro.obs.tracer.canonical_key`.  Only
*attribution* still pins a system to one process (stall spans watermark
per shared site, so cross-shard merges would not be exact);
``NUMASystem.run`` falls back to serial for it — see
``NUMASystem.shard_blockers``.
"""

from __future__ import annotations

import heapq
import os
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import List, Optional, Tuple

import multiprocessing as mp

from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import merge_shard_traces

#: Default shard count for ``NUMASystem.run`` (0 = one per CPU).
SHARDS_ENV_VAR = "REPRO_SIM_SHARDS"
#: Test hook: ``"<shard>:<window>"`` SIGKILLs that worker at that window
#: barrier on the first attempt, exercising crash recovery.
CHAOS_ENV_VAR = "REPRO_PDES_CHAOS"


class ShardCrash(RuntimeError):
    """A shard worker died mid-run (pipe EOF); the run is restartable."""


class ShardError(RuntimeError):
    """A shard worker raised; carries the worker traceback."""


class ShardFallback(RuntimeError):
    """Sharding is unavailable for this system; run serial instead."""


@dataclass
class ShardReport:
    """Summary of a completed sharded run (``NUMASystem.shard_report``)."""

    shards: int
    windows: int
    restarts: int
    cycles: int


def resolve_shards(spec: Optional[int] = None) -> int:
    """Shard count from an explicit request or ``$REPRO_SIM_SHARDS``.

    ``None`` falls back to the environment; 0 means one shard per CPU;
    unset/empty means 1 (serial).
    """
    if spec is None:
        raw = os.environ.get(SHARDS_ENV_VAR, "").strip()
        if not raw:
            return 1
        spec = int(raw)
    if spec < 0:
        raise ValueError("shard count must be >= 0")
    if spec == 0:
        return os.cpu_count() or 1
    return spec


def workers_available() -> bool:
    """Sharding needs the same fork-based workers as the eval pool."""
    from repro.eval.parallel import pool_available

    return pool_available()


def shard_node_ids(n_nodes: int, n_shards: int) -> List[List[int]]:
    """Round-robin node partition: node i lives on shard ``i % n_shards``."""
    return [list(range(s, n_nodes, n_shards)) for s in range(n_shards)]


def _parse_chaos(raw: Optional[str]) -> Optional[Tuple[int, int]]:
    if not raw:
        return None
    shard, _, window = raw.partition(":")
    return int(shard), int(window or 0)


# -- worker side -------------------------------------------------------------


def _advance(system, start: int, end: int, max_cycles: int) -> int:
    """Drive one shard through ``[start, end)``; return its last tick end.

    The in-window loop is the SkipEngine discipline — probe the wake,
    skip proven-quiescent spans, tick — except that a wake at or beyond
    the window end stops the shard *without* skipping to ``end``: the
    next window's ``skip_to(start)`` covers the idle span, and never
    overshooting keeps every node's accounting clamped to cycles the
    serial run also reached.
    """
    tl = system.timeline
    if tl.enabled:
        # First window: installs the restricted system's probes (local
        # nodes only); later windows: idempotent no-op.
        tl.bind(system)
    if system.cycle < start:
        system.skip_to(start)
        if tl.enabled:
            tl.pump(system.cycle)
    last = -1
    while system.cycle < end:
        wake = system.next_event_cycle(system.cycle)
        if wake is None or wake >= end:
            break
        if wake > system.cycle:
            system.skip_to(wake)
            if tl.enabled:
                tl.pump(system.cycle)
        system.tick()
        if tl.enabled:
            tl.pump(system.cycle)
        last = system.cycle
        if last > max_cycles:
            raise RuntimeError(type(system)._overrun_msg)
    return last


def _collect(system, final_cycle: int) -> dict:
    """Finish the shard at the global end cycle and package its state.

    ``skip_to`` settles every local node's deferred accounting at the
    same cycle the serial run ends on; nodes are then stripped of
    process-bound state (stream generators, the home-function closure)
    and shipped back whole, so post-run introspection — metrics, bench
    probes into devices and ARQs — sees exactly what serial runs show.
    """
    system.skip_to(final_cycle)
    timeline_doc = None
    tl = system.timeline
    if tl.enabled:
        tl.pump(final_cycle)
        tl.finish(final_cycle)
        timeline_doc = tl.export()
    trace = None
    tracer = system.tracer
    if getattr(tracer, "enabled", False):
        # Capture, then empty the worker's ring before the nodes (which
        # hold references to it) are pickled — the parent merges the
        # captured events into its own tracer, once.
        trace = (tracer.events(), tracer.dropped)
        tracer.clear()
    nodes = []
    for idx in system._local_ids:
        node = system.nodes[idx]
        node.detach_streams()
        node.mac.request_router.home_fn = None
        nodes.append((idx, node))
    fabric = system.fabric
    return {
        "stats": system.stats,
        "fabric": (fabric.messages_sent, fabric.credit_stalls, fabric.exported),
        "nodes": nodes,
        "timeline": timeline_doc,
        "trace": trace,
    }


def _shard_worker(conn, system, local_ids, max_cycles, chaos_window) -> None:
    window = 0
    busy_s = 0.0
    try:
        system.restrict_to_shard(local_ids)
        if getattr(system.tracer, "enabled", False):
            # The fork copied whatever the parent's ring held; drop it so
            # the collect-time merge sees only this shard's own events
            # (the parent keeps the originals).
            system.tracer.clear()
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _, start, end, imports = msg
                if chaos_window is not None and window == chaos_window:
                    os._exit(17)  # chaos hook: die exactly at a barrier
                window += 1
                t0 = time.perf_counter()
                system.fabric.inject(imports)
                last = _advance(system, start, end, max_cycles)
                exports = system.fabric.drain_exports()
                busy_s += time.perf_counter() - t0
                conn.send(
                    (
                        "window",
                        exports,
                        system.done(),
                        system.next_event_cycle(end),
                        last,
                        busy_s,
                    )
                )
            elif cmd == "collect":
                blob = _collect(system, msg[1])
                try:
                    conn.send(("result", blob))
                except (pickle.PicklingError, TypeError, AttributeError) as exc:
                    conn.send(("fallback", f"shard state not picklable: {exc}"))
            else:  # "exit"
                return
    except EOFError:
        return  # parent went away; nothing to report to
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(
                ("error", type(exc).__name__, str(exc), traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        conn.close()


# -- parent side -------------------------------------------------------------


def _raise_worker_error(reply) -> None:
    _, name, msg, tb = reply
    if name == "RuntimeError":
        # Preserve serial semantics for contract errors (max_cycles
        # overruns and friends) so callers can match on them.
        raise RuntimeError(msg)
    raise ShardError(f"shard worker raised {name}: {msg}\n{tb}")


def _run_windows(
    system, shards: int, max_cycles: int, chaos, restarts: int
) -> ShardReport:
    ctx = mp.get_context("fork")
    partition = shard_node_ids(len(system.nodes), shards)
    shard_of = {
        nid: s for s, ids in enumerate(partition) for nid in ids
    }
    workers = []
    try:
        for s in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    system,
                    partition[s],
                    max_cycles,
                    chaos[1] if chaos and chaos[0] == s else None,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn))

        lookahead = system.fabric.latency_cycles
        prof = getattr(system, "profiler", NULL_PROFILER)
        if prof.enabled:
            prof.run_started(f"pdes[{shards}]")
        #: Per-shard heaps of exported hops awaiting their window.
        pending: List[list] = [[] for _ in range(shards)]
        start = 0
        windows = 0
        final = 0
        while True:
            end = start + lookahead
            window_t0 = time.perf_counter()
            for s, (_proc, conn) in enumerate(workers):
                imports = []
                heap = pending[s]
                while heap and heap[0][0] < end:
                    imports.append(heapq.heappop(heap))
                conn.send(("advance", start, end, imports))
            windows += 1
            done_all = True
            wakes: List[int] = []
            shard_busy: List[float] = []
            for _proc, conn in workers:
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ShardCrash(f"shard worker died mid-window: {exc}")
                if reply[0] == "error":
                    _raise_worker_error(reply)
                _, exports, done, wake, last, busy_s = reply
                shard_busy.append(busy_s)
                for hop in exports:
                    heapq.heappush(pending[shard_of[hop[3]]], hop)
                if last >= 0:
                    final = max(final, last)
                if not done:
                    done_all = False
                if wake is not None:
                    wakes.append(wake)
            if prof.enabled:
                prof.note_window(time.perf_counter() - window_t0, shard_busy)
            have_pending = any(pending)
            if done_all and not have_pending:
                break
            candidates = wakes + [heap[0][0] for heap in pending if heap]
            if not candidates:
                raise RuntimeError(
                    "sharded simulation deadlocked: mesh not drained but "
                    "no shard reports a wake and no hops are in flight"
                )
            start = max(end, min(candidates))
            if start > max_cycles:
                raise RuntimeError(type(system)._overrun_msg)

        results = []
        for _proc, conn in workers:
            conn.send(("collect", final))
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardCrash(f"shard worker died at collect: {exc}")
            if reply[0] == "error":
                _raise_worker_error(reply)
            if reply[0] == "fallback":
                raise ShardFallback(reply[1])
            results.append(reply[1])
            conn.send(("exit",))

        # All shards reported: only now is the parent system mutated, so
        # any failure above leaves it pristine for a restart or a serial
        # fallback run.  Timelines merge in shard order (deterministic:
        # per-epoch rate deltas sum, level series live on one shard) and
        # traces by canonical event key.
        shard_traces = []
        for blob in results:
            system.stats.merge(blob["stats"])
            messages, credit_stalls, exported = blob["fabric"]
            system.fabric.messages_sent += messages
            system.fabric.credit_stalls += credit_stalls
            system.fabric.exported += exported
            if blob.get("timeline") is not None:
                system.timeline.merge_export(blob["timeline"])
            if blob.get("trace") is not None:
                shard_traces.append(blob["trace"])
            for idx, node in blob["nodes"]:
                node.mac.request_router.home_fn = system.home
                system.nodes[idx] = node
        if shard_traces:
            merge_shard_traces(system.tracer, shard_traces)
        system._cycle = final
        if prof.enabled:
            prof.run_finished(final)
        return ShardReport(
            shards=shards, windows=windows, restarts=restarts, cycles=final
        )
    finally:
        for proc, conn in workers:
            conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join()


def run_sharded(system, max_cycles: int, shards: int, max_restarts: int = 2):
    """Run ``system`` under conservative PDES with ``shards`` workers.

    Returns a :class:`ShardReport`; the system object ends bit-identical
    to a serial ``run`` (cycle count, node state, stats counters).  A
    crashed worker triggers a full deterministic rerun (the parent is
    only mutated on success), up to ``max_restarts`` times.
    """
    if shards < 2:
        raise ValueError("sharded runs need at least two shards")
    chaos = _parse_chaos(os.environ.get(CHAOS_ENV_VAR))
    restarts = 0
    while True:
        try:
            return _run_windows(
                system,
                shards,
                max_cycles,
                chaos if restarts == 0 else None,
                restarts,
            )
        except ShardCrash:
            restarts += 1
            if restarts > max_restarts:
                raise
