"""Unified simulation kernel (DESIGN.md section 10).

Shared clocking machinery for every closed-loop model: the
:class:`Clocked` component protocol, the :class:`ClockedModel` base class
(cycle counter + run loop, deduplicated out of ``MAC``, ``Node`` and
``NUMASystem``) and the two interchangeable engines —
:class:`LockstepEngine` (one tick per cycle) and :class:`SkipEngine`
(quiescence detection + fast-forward to the next wake event), which are
bit-identical by contract.
"""

from .kernel import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    WAKE_PROTOCOL_REGISTRY,
    Clocked,
    ClockedModel,
    LockstepEngine,
    SkipEngine,
    engine_names,
    get_engine,
    register_wake_protocol,
    wake_protocol_offenders,
)
from .pdes import (
    SHARDS_ENV_VAR,
    ShardCrash,
    ShardError,
    ShardFallback,
    ShardReport,
    resolve_shards,
    run_sharded,
)
from .watchdog import (
    CHECK_ENV_VAR,
    NULL_WATCHDOG,
    WATCHDOG_ENV_VAR,
    InvariantViolation,
    SimulationHang,
    Watchdog,
    default_watchdog,
    sanitize_enabled,
)

__all__ = [
    "Clocked",
    "ClockedModel",
    "WAKE_PROTOCOL_REGISTRY",
    "register_wake_protocol",
    "wake_protocol_offenders",
    "LockstepEngine",
    "SkipEngine",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "DEFAULT_ENGINE",
    "engine_names",
    "get_engine",
    "SHARDS_ENV_VAR",
    "ShardCrash",
    "ShardError",
    "ShardFallback",
    "ShardReport",
    "resolve_shards",
    "run_sharded",
    "Watchdog",
    "NULL_WATCHDOG",
    "SimulationHang",
    "InvariantViolation",
    "CHECK_ENV_VAR",
    "WATCHDOG_ENV_VAR",
    "default_watchdog",
    "sanitize_enabled",
]
