"""Memory trace records — the output format of the memory tracer.

The paper's tracer captures every memory operation of the Spike-simulated
multiprocessor together with its originating thread and core
(section 5.1).  :class:`TraceRecord` is that capture unit; a *trace* is
any iterable of records.  Records convert 1:1 into
:class:`repro.core.request.MemoryRequest` objects via :func:`to_request`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.request import MemoryRequest, RequestType

#: Trace op mnemonics (text trace format, column 1).
OP_NAMES = {
    RequestType.LOAD: "LD",
    RequestType.STORE: "ST",
    RequestType.FENCE: "FENCE",
    RequestType.ATOMIC: "AMO",
}
OP_BY_NAME = {v: k for k, v in OP_NAMES.items()}


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced memory operation.

    Attributes:
        op: operation kind.
        addr: physical byte address (0 for fences).
        size: access size in bytes.
        tid: hardware thread id.
        core: issuing core index.
        cycle: issue cycle in the traced execution.
    """

    op: RequestType
    addr: int
    size: int = 8
    tid: int = 0
    core: int = 0
    cycle: int = 0

    def to_request(self, tag: int = 0, node: int = 0) -> MemoryRequest:
        """Convert into the MAC's raw-request type."""
        return MemoryRequest(
            addr=self.addr,
            rtype=self.op,
            tid=self.tid,
            tag=tag,
            size=self.size,
            core=self.core,
            node=node,
            issue_cycle=self.cycle,
        )


def to_requests(records: Iterable[TraceRecord], node: int = 0) -> Iterator[MemoryRequest]:
    """Convert a trace into raw requests, assigning per-thread tags.

    Tags are sequential per thread modulo the 16-bit tag space, matching
    the paper's 64 K transactions per thread (section 4.1.1).
    """
    next_tag: dict[int, int] = {}
    for rec in records:
        tag = next_tag.get(rec.tid, 0)
        next_tag[rec.tid] = (tag + 1) & 0xFFFF
        yield rec.to_request(tag=tag, node=node)
