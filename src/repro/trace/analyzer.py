"""Trace stream analyzer (paper section 5.1).

The analyzer inspects the memory instruction stream and retrieves, for
each operation, the HMC row number and FLIT id the MAC will coalesce on,
plus row-locality statistics that predict coalescing opportunity: how
many accesses hit a row already touched within the last *W* operations
(the ARQ's effective window).
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.address import AddressCodec
from repro.core.config import MACConfig
from repro.core.request import RequestType
from repro.obs.protocol import StatsMixin

from .record import TraceRecord


@dataclass(frozen=True, slots=True)
class AnalyzedAccess:
    """One traced access annotated with its HMC coordinates."""

    record: TraceRecord
    row: int
    flit: int


def annotate(
    records: Iterable[TraceRecord], config: Optional[MACConfig] = None
) -> Iterator[AnalyzedAccess]:
    """Attach (row number, FLIT id) to every load/store of a trace."""
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    for rec in records:
        if rec.op in (RequestType.LOAD, RequestType.STORE):
            yield AnalyzedAccess(rec, codec.row_number(rec.addr), codec.flit_id(rec.addr))


@dataclass(slots=True)
class RowLocalityStats(StatsMixin):
    """Row-reuse profile of a trace under a sliding window.

    ``window_hits / accesses`` upper-bounds the coalescing efficiency a
    W-entry ARQ can reach on the trace (type mismatches and capacity
    evictions only lower it).
    """

    MERGE_CONFIG = frozenset({"window"})
    SNAPSHOT_DERIVED = ("hit_rate",)

    window: int
    accesses: int = 0
    window_hits: int = 0
    distinct_rows: int = 0
    row_popularity: Counter = field(default_factory=Counter)

    @property
    def hit_rate(self) -> float:
        return self.window_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_accesses_per_row(self) -> float:
        if not self.distinct_rows:
            return 0.0
        return self.accesses / self.distinct_rows

    def _post_merge(self, other: "RowLocalityStats") -> None:
        # With popularity tracked the merged counter de-duplicates rows
        # exactly; without it the generic sum stands (an upper bound).
        if self.row_popularity:
            self.distinct_rows = len(self.row_popularity)


def row_locality(
    records: Iterable[TraceRecord],
    window: int = 32,
    config: Optional[MACConfig] = None,
    track_popularity: bool = False,
) -> RowLocalityStats:
    """Measure same-row reuse within a W-row sliding window.

    A hit is an access whose (row, op-type) key is currently resident in
    the window — the exact hit condition of the ARQ comparators.
    """
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    stats = RowLocalityStats(window)
    resident: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
    seen_rows: set = set()
    for rec in records:
        if rec.op not in (RequestType.LOAD, RequestType.STORE):
            if rec.op is RequestType.FENCE:
                resident.clear()
            continue
        stats.accesses += 1
        row = codec.row_number(rec.addr)
        key = (row, rec.op.t_bit)
        if row not in seen_rows:
            seen_rows.add(row)
        if track_popularity:
            stats.row_popularity[row] += 1
        if key in resident:
            stats.window_hits += 1
            resident.move_to_end(key)
        else:
            resident[key] = None
            if len(resident) > window:
                resident.popitem(last=False)
    stats.distinct_rows = len(seen_rows)
    return stats


def flit_footprints(
    records: Iterable[TraceRecord],
    window: int = 32,
    config: Optional[MACConfig] = None,
) -> List[int]:
    """Per-coalescing-group FLIT-map populations under ARQ semantics.

    Returns, for every group of accesses the ARQ would merge, the number
    of distinct FLITs it touches — the input distribution of the request
    builder's FLIT table.
    """
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    window_maps: "OrderedDict[Tuple[int, int], set]" = OrderedDict()
    out: List[int] = []

    def evict(key: Tuple[int, int]) -> None:
        flits = window_maps.pop(key)
        out.append(len(flits))

    for rec in records:
        if rec.op not in (RequestType.LOAD, RequestType.STORE):
            if rec.op is RequestType.FENCE:
                for key in list(window_maps):
                    evict(key)
            continue
        row = codec.row_number(rec.addr)
        key = (row, rec.op.t_bit)
        if key in window_maps:
            window_maps[key].add(codec.flit_id(rec.addr))
        else:
            if len(window_maps) >= window:
                evict(next(iter(window_maps)))
            window_maps[key] = {codec.flit_id(rec.addr)}
    for key in list(window_maps):
        evict(key)
    return out
