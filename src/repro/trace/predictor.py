"""Analytic coalescing-efficiency predictor.

The ARQ's behaviour on a trace is determined by the trace's row-reuse
profile under the window: a request merges iff its (row, type) key is
resident and the entry still has target capacity.  This module turns the
analyzer's sliding-window statistics into a prediction of the MAC's
coalescing efficiency *without* running the coalescer — useful for fast
workload screening, and a consistency check between the analyzer and the
engines (tested in ``tests/trace/test_predictor.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.address import AddressCodec
from repro.core.config import MACConfig
from repro.core.request import RequestType

from .record import TraceRecord


@dataclass(frozen=True, slots=True)
class EfficiencyPrediction:
    """Predicted coalescing outcome for a trace."""

    accesses: int
    predicted_merges: int
    capacity_evictions: int

    @property
    def predicted_efficiency(self) -> float:
        if not self.accesses:
            return 0.0
        return self.predicted_merges / self.accesses

    @property
    def predicted_packets(self) -> int:
        return self.accesses - self.predicted_merges


def predict_efficiency(
    records: Iterable[TraceRecord],
    config: Optional[MACConfig] = None,
) -> EfficiencyPrediction:
    """Predict the window engine's coalescing efficiency exactly.

    Replays only the *keys* of the trace through the window rules
    (FIFO eviction, per-entry target capacity, fences), counting merges
    without building FLIT maps, targets or packets — ~3x faster and
    allocation-free, and provably equivalent to the engine's efficiency
    (both implement the same merge predicate).
    """
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    cap = cfg.target_capacity
    window: "OrderedDict[int, int]" = OrderedDict()  # key -> target count
    accesses = 0
    merges = 0
    cap_evictions = 0

    for rec in records:
        if rec.op is RequestType.FENCE:
            window.clear()
            continue
        if rec.op is RequestType.ATOMIC:
            accesses += 1
            continue
        accesses += 1
        t_bit = rec.op.t_bit
        row_bits = cfg.phys_addr_bits - cfg.row_offset_bits
        key = (t_bit << row_bits) | codec.row_number(rec.addr)
        count = window.get(key)
        if count is not None and count < cap:
            window[key] = count + 1
            merges += 1
            continue
        if count is not None:
            window.pop(key)
            cap_evictions += 1
        elif len(window) >= cfg.arq_entries:
            window.popitem(last=False)
        window[key] = 1

    return EfficiencyPrediction(
        accesses=accesses,
        predicted_merges=merges,
        capacity_evictions=cap_evictions,
    )
