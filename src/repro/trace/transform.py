"""Trace transformation utilities.

Library helpers for slicing, merging and reshaping traces — the
operations an experimenter performs between capturing a trace and
feeding it to the MAC: per-thread splitting for core streams,
time-window slicing for phase studies, interleaving several captures,
and address remapping for relocation.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from repro.core.request import RequestType

from .record import TraceRecord


def split_by_thread(records: Iterable[TraceRecord]) -> Dict[int, List[TraceRecord]]:
    """Partition a trace into per-thread sub-traces (order preserved)."""
    out: Dict[int, List[TraceRecord]] = {}
    for rec in records:
        out.setdefault(rec.tid, []).append(rec)
    return out


def split_by_core(records: Iterable[TraceRecord]) -> Dict[int, List[TraceRecord]]:
    """Partition a trace into per-core sub-traces (order preserved)."""
    out: Dict[int, List[TraceRecord]] = {}
    for rec in records:
        out.setdefault(rec.core, []).append(rec)
    return out


def time_window(
    records: Iterable[TraceRecord], start: int, end: int
) -> Iterator[TraceRecord]:
    """Records with ``start <= cycle < end`` (for phase studies)."""
    if end < start:
        raise ValueError("end must be >= start")
    for rec in records:
        if start <= rec.cycle < end:
            yield rec


def merge_by_cycle(*traces: Sequence[TraceRecord]) -> List[TraceRecord]:
    """Merge cycle-stamped traces into one, ordered by cycle (stable)."""
    return list(
        heapq.merge(*traces, key=lambda r: r.cycle)
    )


def remap_addresses(
    records: Iterable[TraceRecord], fn: Callable[[int], int]
) -> Iterator[TraceRecord]:
    """Apply an address transformation (e.g. relocation) to a trace.

    Fences (addr 0 by convention) pass through untouched.
    """
    for rec in records:
        if rec.op is RequestType.FENCE:
            yield rec
            continue
        new_addr = fn(rec.addr)
        if not 0 <= new_addr < (1 << 52):
            raise ValueError(f"remapped address {new_addr:#x} out of range")
        yield TraceRecord(
            op=rec.op,
            addr=new_addr,
            size=rec.size,
            tid=rec.tid,
            core=rec.core,
            cycle=rec.cycle,
        )


def filter_ops(
    records: Iterable[TraceRecord], kinds: Sequence[RequestType]
) -> Iterator[TraceRecord]:
    """Keep only the given operation kinds."""
    wanted = set(kinds)
    return (rec for rec in records if rec.op in wanted)


def downsample(
    records: Sequence[TraceRecord], keep_one_in: int
) -> List[TraceRecord]:
    """Systematic 1-in-N sampling (fences always kept: they are barriers).

    Note that sampling changes coalescing behaviour — row neighbours of
    dropped records disappear — so use it for miss-rate-style studies,
    not for MAC efficiency measurements.
    """
    if keep_one_in < 1:
        raise ValueError("keep_one_in must be >= 1")
    out: List[TraceRecord] = []
    for i, rec in enumerate(records):
        if rec.op is RequestType.FENCE or i % keep_one_in == 0:
            out.append(rec)
    return out
