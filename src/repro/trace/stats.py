"""Execution-level trace statistics: IPC, RPI, memory access rate, RPC.

Implements Equation 2 of the paper::

    RPC = IPC x RPI x #cores x mem_access_rate

where IPC is instructions per cycle of one core, RPI is memory requests
per instruction, and mem_access_rate is the fraction of those requests
that miss the SPM and reach the MAC (section 4.4, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.request import RequestType

from .record import TraceRecord


@dataclass(frozen=True, slots=True)
class ExecutionProfile:
    """Per-benchmark execution characteristics (Eq. 2 inputs).

    The paper measures these with Spike; our workload generators declare
    them per benchmark class (see ``repro.workloads.registry``) based on
    the published characteristics of each suite.

    Note on magnitudes: ``ipc`` here is the per-core *request injection
    rate*, counting both instruction-issued accesses and the SPM DMA
    engines' block-transfer bursts (section 5.1's prefetch/write-back
    ISA extensions).  That is how an 8-core in-order node offers the
    paper's ~9 raw requests per cycle (Fig. 9) despite single-issue
    pipelines.
    """

    name: str
    ipc: float
    rpi: float
    mem_access_rate: float

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise ValueError("IPC must be positive")
        if not 0 < self.rpi <= 1:
            raise ValueError("RPI must be in (0, 1]")
        if not 0 < self.mem_access_rate <= 1:
            raise ValueError("mem_access_rate must be in (0, 1]")

    def rpc(self, cores: int = 8) -> float:
        """Raw requests per cycle offered to the MAC (Eq. 2)."""
        if cores < 1:
            raise ValueError("need at least one core")
        return self.ipc * self.rpi * cores * self.mem_access_rate


@dataclass(slots=True)
class TraceSummary:
    """Counts derived from an actual trace."""

    operations: int = 0
    loads: int = 0
    stores: int = 0
    fences: int = 0
    atomics: int = 0
    bytes_accessed: int = 0
    distinct_threads: int = 0
    span_cycles: int = 0

    @property
    def memory_operations(self) -> int:
        return self.loads + self.stores + self.atomics

    @property
    def load_fraction(self) -> float:
        m = self.memory_operations
        return self.loads / m if m else 0.0

    @property
    def requests_per_cycle(self) -> float:
        """Offered raw-request rate over the traced execution span."""
        if self.span_cycles <= 0:
            return 0.0
        return self.memory_operations / self.span_cycles


def summarize(records: Iterable[TraceRecord]) -> TraceSummary:
    """One pass over a trace computing the summary counters."""
    s = TraceSummary()
    threads = set()
    first = None
    last = 0
    for rec in records:
        s.operations += 1
        if rec.op is RequestType.LOAD:
            s.loads += 1
        elif rec.op is RequestType.STORE:
            s.stores += 1
        elif rec.op is RequestType.FENCE:
            s.fences += 1
        else:
            s.atomics += 1
        if rec.op is not RequestType.FENCE:
            s.bytes_accessed += rec.size
        threads.add(rec.tid)
        if first is None or rec.cycle < first:
            first = rec.cycle
        last = max(last, rec.cycle)
    s.distinct_threads = len(threads)
    s.span_cycles = 0 if first is None else last - first + 1
    return s
