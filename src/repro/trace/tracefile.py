"""Trace file IO — text and binary formats.

The text format is one record per line::

    <OP> <hex addr> <size> <tid> <core> <cycle>

e.g. ``LD 0x7f3a10 8 3 1 4242``.  The binary format packs each record as
a little-endian struct (1 B op, 8 B addr, 2 B size, 2 B tid, 2 B core,
8 B cycle = 23 B/record) — compact enough to keep multi-million-request
traces on disk for reproducible runs.  Paths ending in ``.gz`` are
transparently gzip-compressed in either format.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.core.request import RequestType

from .record import OP_BY_NAME, OP_NAMES, TraceRecord

_BIN = struct.Struct("<BQHHHQ")
_MAGIC = b"MACTRC1\n"

PathLike = Union[str, Path]


# -- text format ------------------------------------------------------------


def _open(path: PathLike, mode: str) -> IO:
    """Open a trace file, transparently gzipped for .gz paths."""
    if str(path).endswith(".gz"):
        if "b" in mode:
            return gzip.open(path, mode)
        return gzip.open(path, mode + "t", encoding="ascii")
    if "b" in mode:
        return open(path, mode)
    return open(path, mode, encoding="ascii")


def dump_text(records: Iterable[TraceRecord], path: PathLike) -> int:
    """Write a text trace; returns the record count."""
    n = 0
    with _open(path, "w") as fh:
        for rec in records:
            fh.write(
                f"{OP_NAMES[rec.op]} {rec.addr:#x} {rec.size} "
                f"{rec.tid} {rec.core} {rec.cycle}\n"
            )
            n += 1
    return n


def load_text(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a text trace (blank lines / # comments skipped)."""
    with _open(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 6:
                raise ValueError(f"{path}:{lineno}: expected 6 fields, got {len(parts)}")
            op = OP_BY_NAME.get(parts[0])
            if op is None:
                raise ValueError(f"{path}:{lineno}: unknown op {parts[0]!r}")
            yield TraceRecord(
                op=op,
                addr=int(parts[1], 16),
                size=int(parts[2]),
                tid=int(parts[3]),
                core=int(parts[4]),
                cycle=int(parts[5]),
            )


# -- binary format -------------------------------------------------------------


def dump_binary(records: Iterable[TraceRecord], path: PathLike) -> int:
    """Write a binary trace; returns the record count."""
    n = 0
    with _open(path, "wb") as fh:
        fh.write(_MAGIC)
        for rec in records:
            fh.write(
                _BIN.pack(rec.op.value, rec.addr, rec.size, rec.tid, rec.core, rec.cycle)
            )
            n += 1
    return n


def load_binary(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a binary trace."""
    with _open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a MAC binary trace")
        while True:
            blob = fh.read(_BIN.size)
            if not blob:
                break
            if len(blob) != _BIN.size:
                raise ValueError(f"{path}: truncated record at EOF")
            op, addr, size, tid, core, cycle = _BIN.unpack(blob)
            yield TraceRecord(
                op=RequestType(op), addr=addr, size=size, tid=tid, core=core, cycle=cycle
            )


def dump(records: Iterable[TraceRecord], path: PathLike) -> int:
    """Format-dispatching writer: .trc/.trc.gz -> binary, else text."""
    if str(path).endswith((".trc", ".trc.gz")):
        return dump_binary(records, path)
    return dump_text(records, path)


def load(path: PathLike) -> Iterator[TraceRecord]:
    """Format-dispatching reader (sniffs the binary magic)."""
    with _open(path, "rb") as fh:
        head = fh.read(len(_MAGIC))
    if head == _MAGIC:
        return load_binary(path)
    return load_text(path)
