"""Memory tracing infrastructure — the Spike-tracer/analyzer stand-in.

Provides the trace record format, text/binary trace files, the stream
analyzer that recovers HMC row numbers and FLIT ids (section 5.1), and
the execution statistics behind Equation 2 / Fig. 9.
"""

from .analyzer import (
    AnalyzedAccess,
    RowLocalityStats,
    annotate,
    flit_footprints,
    row_locality,
)
from .predictor import EfficiencyPrediction, predict_efficiency
from .record import OP_BY_NAME, OP_NAMES, TraceRecord, to_requests
from .stats import ExecutionProfile, TraceSummary, summarize
from .tracefile import dump, dump_binary, dump_text, load, load_binary, load_text
from .transform import (
    downsample,
    filter_ops,
    merge_by_cycle,
    remap_addresses,
    split_by_core,
    split_by_thread,
    time_window,
)

__all__ = [
    "AnalyzedAccess",
    "ExecutionProfile",
    "OP_BY_NAME",
    "OP_NAMES",
    "RowLocalityStats",
    "TraceRecord",
    "TraceSummary",
    "annotate",
    "EfficiencyPrediction",
    "dump",
    "dump_binary",
    "dump_text",
    "flit_footprints",
    "load",
    "predict_efficiency",
    "load_binary",
    "load_text",
    "row_locality",
    "summarize",
    "downsample",
    "filter_ops",
    "merge_by_cycle",
    "remap_addresses",
    "split_by_core",
    "split_by_thread",
    "time_window",
    "to_requests",
]
