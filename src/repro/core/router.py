"""Request and response routers of the node front-end (paper sections 3.1, 3.3).

The request router classifies raw requests by home node: requests whose
physical address belongs to the local 3D-stacked memory go to the *Local
Access Queue*; requests for remote devices are forwarded through the
*Global Access Queue*; requests arriving from remote nodes land in the
*Remote Access Queue*.  The response router matches device responses to
their targets and returns data either to local cores or to the
originating remote node.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..obs.protocol import StatsMixin
from ..sim import register_wake_protocol
from .packet import CoalescedResponse
from .request import MemoryRequest, Target


class FIFOQueue:
    """Bounded FIFO decoupling cores from the memory subsystem.

    Rejections are observable, not silent: a failed ``push`` increments
    ``rejected`` (aliased as ``drops``) and the queue tracks its
    occupancy high-water mark, so backpressure shows up in stats instead
    of vanishing requests.
    """

    def __init__(self, capacity: int = 64, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._q: Deque[MemoryRequest] = deque()
        self.enqueued = 0
        self.rejected = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._q

    @property
    def drops(self) -> int:
        """Requests refused because the queue was full (= ``rejected``)."""
        return self.rejected

    def push(self, request: MemoryRequest) -> bool:
        if self.full:
            self.rejected += 1
            return False
        self._q.append(request)
        self.enqueued += 1
        if len(self._q) > self.high_water:
            self.high_water = len(self._q)
        return True

    def pop(self) -> Optional[MemoryRequest]:
        return self._q.popleft() if self._q else None

    def peek(self) -> Optional[MemoryRequest]:
        return self._q[0] if self._q else None


@dataclass
class RouterStats(StatsMixin):
    local: int = 0
    outbound_remote: int = 0
    inbound_remote: int = 0


@register_wake_protocol
class RequestRouter:
    """Classifies raw requests into local / global / remote queues.

    Args:
        node_id: id of the node this router belongs to.
        home_fn: maps a physical address to its home node id.  The default
            (None) treats every address as local — the single-node setup
            used throughout the paper's evaluation.
        queue_capacity: depth of each FIFO.
    """

    def __init__(
        self,
        node_id: int = 0,
        home_fn: Optional[Callable[[int], int]] = None,
        queue_capacity: int = 64,
    ) -> None:
        self.node_id = node_id
        self.home_fn = home_fn
        self.local_queue = FIFOQueue(queue_capacity, "local")
        self.global_queue = FIFOQueue(queue_capacity, "global")
        self.remote_queue = FIFOQueue(queue_capacity, "remote")
        self.stats = RouterStats()

    def home(self, addr: int) -> int:
        return self.node_id if self.home_fn is None else self.home_fn(addr)

    def route(self, request: MemoryRequest) -> bool:
        """Route one locally generated raw request; False if queue full."""
        if request.is_fence or self.home(request.addr) == self.node_id:
            ok = self.local_queue.push(request)
            if ok:
                self.stats.local += 1
            return ok
        ok = self.global_queue.push(request)
        if ok:
            self.stats.outbound_remote += 1
        return ok

    def receive_remote(self, request: MemoryRequest) -> bool:
        """Accept a raw request arriving from a remote node."""
        ok = self.remote_queue.push(request)
        if ok:
            self.stats.inbound_remote += 1
        return ok

    def next_for_mac(self) -> Optional[MemoryRequest]:
        """Pop the next raw request bound for the local MAC.

        Local traffic has priority; remote traffic is served when the
        local queue is empty (simple two-queue arbitration).
        """
        req = self.local_queue.pop()
        if req is None:
            req = self.remote_queue.pop()
        return req

    def next_outbound(self) -> Optional[MemoryRequest]:
        """Pop the next raw request bound for a remote node."""
        return self.global_queue.pop()

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Buffered requests must drain every cycle; empty queues never act."""
        if (
            self.local_queue.empty
            and self.remote_queue.empty
            and self.global_queue.empty
        ):
            return None
        return now

    def skip_to(self, target: int) -> None:
        """No per-cycle state: skipping an empty router is a no-op."""


#: Shared empty drain result: callers treat it as read-only.
_EMPTY_DRAIN: Tuple[list, list] = ([], [])


@register_wake_protocol
class ResponseRouter:
    """Directs device responses back to cores or remote nodes (section 3.3).

    Under fault injection the router is also the node's loss-recovery
    point: dispatched packets are registered as *outstanding*, responses
    that never arrive are detected by timeout and handed back for
    re-issue, late duplicates (a delayed original racing its re-issue)
    are suppressed by packet id, and poisoned responses propagate the
    poison mark to every satisfied raw request instead of silently
    delivering bad data.  None of this machinery runs unless
    :meth:`register_dispatch` is used, so the fault-free path is
    untouched.
    """

    def __init__(self, node_id: int = 0, buffer_capacity: int = 256) -> None:
        self.node_id = node_id
        self.buffer_capacity = buffer_capacity
        self._buffer: Deque[CoalescedResponse] = deque()
        #: (tid, tag) -> completion cycle, for load/store queue matching.
        self.completed: Dict[Tuple[int, int], int] = {}
        self.local_deliveries = 0
        self.remote_deliveries = 0
        #: packet_id -> (packet, dispatch cycle); insertion-ordered by
        #: dispatch cycle, so the timeout scan stops at the first young one.
        self.outstanding: Dict[int, Tuple[object, int]] = {}
        self._delivered_ids: set = set()
        self._next_packet_id = 0
        self.timeouts = 0
        self.reissues = 0
        self.duplicates_suppressed = 0
        self.poisoned_deliveries = 0

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def buffered_raw_count(self) -> int:
        """Raw requests inside buffered responses (conservation checks)."""
        return sum(len(resp.request.requests) for resp in self._buffer)

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Buffered responses must deliver; timeouts are the node's wake.

        The loss-recovery deadline is *not* reported here: the owning
        node folds :meth:`next_timeout_cycle` into its own wake (the
        timeout horizon depends on the device fault config the router
        cannot see).
        """
        return now if self._buffer else None

    def skip_to(self, target: int) -> None:
        """No per-cycle state: skipping an idle router is a no-op."""

    # -- loss recovery (fault injection only) -------------------------------

    def register_dispatch(self, packet, cycle: int) -> int:
        """Track a packet sent to the device; returns its packet id.

        Re-registering a re-issued packet keeps its original id so a
        late response to either copy satisfies (and retires) both.
        """
        if packet.packet_id < 0:
            packet.packet_id = self._next_packet_id
            self._next_packet_id += 1
        self.outstanding.pop(packet.packet_id, None)
        self.outstanding[packet.packet_id] = (packet, cycle)
        return packet.packet_id

    def next_timeout_cycle(self, timeout_cycles: int) -> Optional[int]:
        """Cycle at which the oldest outstanding packet will time out.

        ``None`` when nothing is outstanding.  ``outstanding`` is kept in
        dispatch order, so the first entry is the earliest deadline —
        mirroring the early-break scan of :meth:`check_timeouts`.
        """
        for _packet, dispatched in self.outstanding.values():
            return dispatched + timeout_cycles
        return None

    def check_timeouts(self, now: int, timeout_cycles: int) -> List[object]:
        """Collect outstanding packets older than ``timeout_cycles``.

        The caller re-issues them to the device and re-registers them.
        """
        expired: List[object] = []
        for pid, (packet, dispatched) in list(self.outstanding.items()):
            if now - dispatched < timeout_cycles:
                break  # insertion order == dispatch order
            del self.outstanding[pid]
            self.timeouts += 1
            self.reissues += 1
            expired.append(packet)
        return expired

    # -- response path ------------------------------------------------------

    def receive(self, response: CoalescedResponse) -> None:
        """Store a device response in the response buffer.

        Duplicate responses for an already-delivered packet (possible
        only under fault injection, when a delayed original races its
        re-issued copy) are counted and discarded.
        """
        pid = response.request.packet_id
        if pid >= 0:
            if pid in self._delivered_ids:
                self.duplicates_suppressed += 1
                return
            self._delivered_ids.add(pid)
            self.outstanding.pop(pid, None)
        if len(self._buffer) >= self.buffer_capacity:
            raise RuntimeError("response buffer overflow")
        self._buffer.append(response)

    def drain(
        self,
    ) -> Tuple[List[Tuple[Target, MemoryRequest]], List[Tuple[Target, MemoryRequest]]]:
        """Route every buffered response to its destinations.

        Returns (local, remote) lists of (target, raw request) pairs.
        Raw requests get their ``complete_cycle`` stamped (and the poison
        mark propagated), and local completions are recorded for LSQ
        matching.
        """
        if not self._buffer:
            return _EMPTY_DRAIN  # hot path: most cycles deliver nothing
        local: List[Tuple[Target, MemoryRequest]] = []
        remote: List[Tuple[Target, MemoryRequest]] = []
        while self._buffer:
            resp = self._buffer.popleft()
            if resp.poisoned:
                self.poisoned_deliveries += len(resp.request.targets)
            for target, raw in zip(resp.request.targets, resp.request.requests):
                raw.complete_cycle = resp.complete_cycle
                if resp.poisoned:
                    raw.poisoned = True
                if raw.node == self.node_id:
                    self.completed[(target.tid, target.tag)] = resp.complete_cycle
                    local.append((target, raw))
                    self.local_deliveries += 1
                else:
                    remote.append((target, raw))
                    self.remote_deliveries += 1
        return local, remote
