"""The Memory Access Coalescer — the paper's contribution, fully wired.

Two engines are provided (DESIGN.md section 6):

* :class:`MAC` — the reference cycle-level model: request router feeding
  the raw request aggregator (1 accept/cycle, pop every 2 cycles), the
  two-stage pipelined builder, and the response router.
* :func:`coalesce_trace_fast` — the steady-state window engine used for
  large parameter sweeps; semantically an ARQ whose comparator window is
  the queue occupancy, cross-validated against the cycle engine by the
  property tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from ..obs.attribution import NULL_ATTRIBUTION, StallCause
from ..obs.metrics import MetricsRegistry
from ..obs.timeline import NULL_TIMELINE
from ..obs.tracer import NULL_TRACER
from ..sim import ClockedModel, register_wake_protocol
from .address import AddressCodec
from .aggregator import RawRequestAggregator
from .arq import ARQEntry
from .builder import RequestBuilder, bypass_packet
from .config import MACConfig
from .flit import FlitMap
from .flit_table import FlitTablePolicy
from .packet import CoalescedRequest, CoalescedResponse
from .request import MemoryRequest, Target
from .router import RequestRouter, ResponseRouter
from .stats import MACStats


@register_wake_protocol
class MAC(ClockedModel):
    """Cycle-level Memory Access Coalescer for one node.

    Typical use::

        mac = MAC(MACConfig())
        for req in requests:
            mac.submit(req)
        packets = mac.run()          # clock until drained
        print(mac.stats.coalescing_efficiency)

    For closed-loop simulation with a memory device, call
    :meth:`tick` per cycle and feed responses through
    :meth:`receive_response`.
    """

    _overrun_msg = "MAC failed to drain within max_cycles"

    def __init__(
        self,
        config: Optional[MACConfig] = None,
        node_id: int = 0,
        home_fn: Optional[Callable[[int], int]] = None,
        policy: FlitTablePolicy = FlitTablePolicy.SPAN,
        queue_capacity: int = 64,
        tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
        timeline=NULL_TIMELINE,
    ) -> None:
        self.config = config or MACConfig()
        self.codec = AddressCodec(self.config)
        self.stats = MACStats()
        self.tracer = tracer
        self.attrib = attrib
        self.timeline = timeline
        self.request_router = RequestRouter(node_id, home_fn, queue_capacity)
        self.response_router = ResponseRouter(node_id)
        self.aggregator = RawRequestAggregator(
            self.config, self.codec, policy, self.stats, tracer=tracer,
            attrib=attrib,
        )

    # -- stats wiring -------------------------------------------------------

    def attach_stats(self, stats: MACStats) -> None:
        """Point every stats-recording component at ``stats``.

        The MAC and its aggregator share one :class:`MACStats`; rebinding
        only ``mac.stats`` after construction would leave the aggregator
        recording into the orphaned original (the builder, ARQ and
        routers keep their own plain counters and need no rewiring).
        External code that swaps the stats sink — e.g.
        :func:`repro.eval.runner.dispatch` — must use this method rather
        than assigning attributes piecemeal.
        """
        self.stats = stats
        self.aggregator.stats = stats

    def metrics(self) -> dict:
        """Flat namespaced metrics over the MAC's own stats sources."""
        reg = MetricsRegistry()
        reg.register("mac", self.stats)
        reg.register("router", self.request_router.stats)
        reg.register(
            "arq",
            lambda: {
                "merges": self.aggregator.arq.merges,
                "allocations": self.aggregator.arq.allocations,
                "fence_blocked_merges": self.aggregator.arq.fence_blocked_merges,
                "bypass_fills": self.aggregator.arq.bypass_fills,
            },
        )
        return reg.collect()

    def timeline_probes(self):
        """Probes for :class:`repro.obs.timeline.Timeline` (DESIGN 13).

        Rates are monotonic counters (per-epoch deltas reconstruct the
        serial series under shard merge); levels are instantaneous
        occupancies read at epoch boundaries.
        """
        stats = self.stats
        arq = self.aggregator.arq
        rr = self.request_router
        return [
            ("mac.raw_requests", "rate", lambda: stats.raw_requests),
            ("mac.packets", "rate", lambda: stats.coalesced_packets),
            ("mac.payload_bytes", "rate", lambda: stats.payload_bytes),
            ("arq.merges", "rate", lambda: arq.merges),
            ("arq.allocations", "rate", lambda: arq.allocations),
            ("arq.depth", "level", lambda: len(arq)),
            (
                "mac.input_depth",
                "level",
                lambda: len(rr.local_queue) + len(rr.remote_queue),
            ),
        ]

    # -- input ------------------------------------------------------------

    def submit(self, request: MemoryRequest) -> bool:
        """Offer one locally generated raw request (False if queue full)."""
        ok = self.request_router.route(request)
        if self.attrib.enabled:
            cycle = self.aggregator.cycle
            if ok:
                # Inlined AttributionCollector.mark (hot: every issued
                # request, including core retries after back-pressure).
                m = request.marks
                if m is None:
                    m = request.marks = {}
                m["submit"] = cycle
            else:
                # Span-charged so several cores bouncing in one cycle
                # still cost the site at most one stall cycle.
                self.attrib.stall_span(
                    "router", StallCause.INPUT_QUEUE_FULL, cycle, cycle + 1
                )
        return ok

    def submit_remote(self, request: MemoryRequest) -> bool:
        """Offer one raw request arriving from a remote node."""
        ok = self.request_router.receive_remote(request)
        if ok and self.attrib.enabled:
            self.attrib.mark(request, "submit", self.aggregator.cycle)
        return ok

    # -- clocking ----------------------------------------------------------

    @property
    def cycle(self) -> int:
        return self.aggregator.cycle

    def idle(self) -> bool:
        return (
            self.request_router.local_queue.empty
            and self.request_router.remote_queue.empty
            and self.aggregator.idle()
        )

    def done(self) -> bool:
        """Kernel-facing completion predicate: nothing left to drain."""
        return self.idle()

    def next_event_cycle(self, now: int) -> Optional[int]:
        """A busy MAC acts every cycle; an idle one schedules no wake.

        Wake sources, per component: a non-empty input queue feeds the
        aggregator next tick (now); the aggregator reports its own wake
        (now while its ARQ or builder holds anything, None when
        drained).  The only skippable MAC state is therefore full
        idleness — where the next event belongs to whoever feeds it
        (core issue, fabric delivery, in-flight heap).
        """
        if not (
            self.request_router.local_queue.empty
            and self.request_router.remote_queue.empty
        ):
            return now
        return self.aggregator.next_event_cycle(now)

    def skip_to(self, target: int) -> None:
        """Fast-forward an idle MAC (see RawRequestAggregator.skip)."""
        self.aggregator.skip(self.aggregator.cycle, target)

    def tick(self) -> List[CoalescedRequest]:
        """Advance one cycle; returns packets dispatched to the device."""
        incoming = None
        arq = self.aggregator.arq
        if not arq.full:
            incoming = self.request_router.next_for_mac()
        elif self.attrib.enabled and not (
            self.request_router.local_queue.empty
            and self.request_router.remote_queue.empty
        ):
            # A request is waiting but every ARQ entry is occupied: one
            # stall cycle, attributed to the pending fence when the
            # drain is what keeps the queue full.
            cycle = self.aggregator.cycle
            cause = (
                StallCause.FENCE_DRAIN
                if not arq.comparators_enabled
                else StallCause.ARQ_FULL
            )
            self.attrib.stall_span("arq", cause, cycle, cycle + 1)
        return self.aggregator.tick(incoming)

    def run(
        self, max_cycles: int = 100_000_000, engine=None
    ) -> List[CoalescedRequest]:
        """Clock until all buffered requests have been emitted.

        The max-cycles guard is *relative*: it budgets the cycles spent
        draining in this call, not the absolute cycle counter (the MAC
        may have been ticking long before ``run`` is called).
        """
        out: List[CoalescedRequest] = []
        self._run_loop(max_cycles, engine=engine, on_tick=out.extend, relative=True)
        return out

    def process(
        self,
        requests: Iterable[MemoryRequest],
        max_cycles: int = 1_000_000_000,
        engine=None,
    ) -> List[CoalescedRequest]:
        """Feed a whole trace with backpressure, then drain.

        Offers the next raw request whenever the input queue has room
        (otherwise the MAC keeps ticking until space frees up), so no
        request is dropped.  This is the standard way to coalesce a
        pre-recorded trace with the cycle engine.
        """
        from ..sim import get_engine
        from ..sim.watchdog import NULL_WATCHDOG

        eng = get_engine(engine)
        # The drain phase runs under the engine's watchdog; the manual
        # backpressure feed loop here must be observed by the same one so
        # a MAC that stops accepting *and* stops draining is caught too.
        wd = getattr(eng, "watchdog", NULL_WATCHDOG)
        if wd.enabled:
            wd.reset()
        # Same for the timeline/profiler: binding here makes the engine's
        # own bind in the drain run() a no-op, so feed-phase epochs and
        # rate baselines survive into the drain phase.
        tl = self.timeline
        prof = self.profiler
        if tl.enabled:
            tl.bind(self)
        if prof.enabled:
            prof.run_started()
        out: List[CoalescedRequest] = []
        cycles = 0
        it = iter(requests)
        pending: Optional[MemoryRequest] = next(it, None)
        while pending is not None:
            if not self.request_router.local_queue.full and self.submit(pending):
                pending = next(it, None)
            else:
                out.extend(self.tick())
                if tl.enabled:
                    tl.pump(self.cycle)
                if prof.enabled:
                    prof.note_tick()
                if wd.enabled:
                    wd.observe(self)
                cycles += 1
                if cycles > max_cycles:
                    raise RuntimeError("MAC made no progress within max_cycles")
        out.extend(self.run(max_cycles, engine=eng))
        return out

    # -- robustness introspection (see repro.sim.watchdog) -------------------

    def pending_request_count(self) -> int:
        """Non-fence raw requests buffered anywhere inside the MAC."""
        rr = self.request_router
        queued = sum(
            1
            for q in (rr.local_queue, rr.remote_queue, rr.global_queue)
            for req in q._q
            if not req.is_fence
        )
        arq = sum(
            len(e.requests)
            for e in self.aggregator.arq.entries()
            if not e.fence
        )
        return queued + arq + self.aggregator.builder.pending_requests()

    def progress_token(self):
        """Fingerprint that changes whenever the MAC makes forward progress."""
        rr = self.request_router
        return (
            self.stats.raw_requests,
            self.stats.coalesced_packets,
            len(rr.local_queue),
            len(rr.remote_queue),
            len(rr.global_queue),
            len(self.aggregator.arq),
            self.aggregator.builder.stage1_busy,
            self.aggregator.builder.stage2_busy,
            self.response_router.buffered,
            self.response_router.local_deliveries,
            self.response_router.remote_deliveries,
        )

    def hang_snapshot(self) -> dict:
        """Diagnostic state attached to a :class:`SimulationHang`."""
        rr = self.request_router
        builder = self.aggregator.builder
        return {
            "cycle": self.cycle,
            "local_queue": len(rr.local_queue),
            "remote_queue": len(rr.remote_queue),
            "global_queue": len(rr.global_queue),
            "arq_occupancy": len(self.aggregator.arq),
            "arq_free": self.aggregator.arq.free_entries,
            "builder_stage1": builder.stage1_busy,
            "builder_stage2": builder.stage2_busy,
            "responses_buffered": self.response_router.buffered,
            "outstanding_packets": len(self.response_router.outstanding),
        }

    def check_invariants(self) -> None:
        """Occupancy-bound checks (``REPRO_SIM_CHECK=1``); raise on breach."""
        from ..sim.watchdog import InvariantViolation

        cycle = self.cycle
        rr = self.request_router
        for q in (rr.local_queue, rr.remote_queue, rr.global_queue):
            if len(q) > q.capacity:
                raise InvariantViolation(
                    cycle, f"{q.name} queue over capacity ({len(q)}/{q.capacity})"
                )
        arq = self.aggregator.arq
        if len(arq) > self.config.arq_entries:
            raise InvariantViolation(
                cycle,
                f"ARQ over capacity ({len(arq)}/{self.config.arq_entries})",
            )
        cap = self.config.target_capacity
        for entry in arq.entries():
            if entry.target_count > cap:
                raise InvariantViolation(
                    cycle,
                    f"ARQ entry holds {entry.target_count} targets (cap {cap})",
                )
        resp = self.response_router
        if resp.buffered > resp.buffer_capacity:
            raise InvariantViolation(
                cycle,
                f"response buffer over capacity "
                f"({resp.buffered}/{resp.buffer_capacity})",
            )

    # -- responses ----------------------------------------------------------

    def receive_response(self, response: CoalescedResponse) -> None:
        self.response_router.receive(response)

    def deliver_responses(self):
        """Route buffered responses; see ResponseRouter.drain()."""
        return self.response_router.drain()


# ---------------------------------------------------------------------------
# Fast window engine
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _WindowEntry:
    key: int
    flit_map: FlitMap
    targets: List[Target] = field(default_factory=list)
    requests: List[MemoryRequest] = field(default_factory=list)


def coalesce_trace_fast(
    requests: Iterable[MemoryRequest],
    config: Optional[MACConfig] = None,
    policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    stats: Optional[MACStats] = None,
) -> List[CoalescedRequest]:
    """Steady-state ARQ semantics over a whole trace, without clocking.

    Models the ARQ as a FIFO window of ``arq_entries`` open rows: merge on
    a (row, type) hit, evict the oldest entry when the window is full,
    drain everything older than a fence when one arrives.  This matches
    the cycle engine's behaviour in the back-pressured steady state the
    paper evaluates (input rate > 2x drain rate, Fig. 9), and is orders of
    magnitude faster for million-request sweeps.

    Returns the emitted packets in eviction order; fills ``stats`` (or a
    fresh MACStats) identically to the cycle engine.
    """
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    builder = RequestBuilder(cfg, codec, policy)
    st = stats if stats is not None else MACStats()
    window: "OrderedDict[int, _WindowEntry]" = OrderedDict()
    out: List[CoalescedRequest] = []
    cap = cfg.target_capacity

    def emit(entry: _WindowEntry) -> None:
        arq_entry = ARQEntry(
            key=entry.key,
            flit_map=entry.flit_map,
            targets=entry.targets,
            bypass=len(entry.targets) == 1,
            requests=entry.requests,
        )
        if arq_entry.bypass:
            pkt = bypass_packet(arq_entry, codec, cfg)
            out.append(pkt)
            st.record_packet(pkt)
        else:
            for pkt in builder.build(arq_entry):
                out.append(pkt)
                st.record_packet(pkt)

    def drain_window() -> None:
        while window:
            _, entry = window.popitem(last=False)
            emit(entry)

    for req in requests:
        st.record_raw(req.rtype)
        if req.is_fence:
            drain_window()
            continue
        if req.is_atomic:
            flit = codec.flit_id(req.addr)
            pkt = bypass_packet(
                ARQEntry(
                    key=-1,
                    flit_map=FlitMap(cfg.flits_per_row),
                    targets=[Target(req.tid, req.tag, flit)],
                    bypass=True,
                    atomic=True,
                    requests=[req],
                ),
                codec,
                cfg,
            )
            out.append(pkt)
            st.record_packet(pkt)
            continue

        key = codec.arq_key(req)
        entry = window.get(key)
        flit = codec.flit_id(req.addr)
        if entry is not None and len(entry.targets) < cap:
            entry.flit_map.set(flit)
            entry.targets.append(Target(req.tid, req.tag, flit))
            entry.requests.append(req)
            continue
        if entry is not None:
            # Capacity-full entry: emit it and start a fresh one.
            window.pop(key)
            emit(entry)
        elif len(window) >= cfg.arq_entries:
            _, oldest = window.popitem(last=False)
            emit(oldest)
        fmap = FlitMap(cfg.flits_per_row)
        fmap.set(flit)
        window[key] = _WindowEntry(
            key=key,
            flit_map=fmap,
            targets=[Target(req.tid, req.tag, flit)],
            requests=[req],
        )

    drain_window()
    return out
