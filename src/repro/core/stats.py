"""MAC statistics counters shared by both simulation engines."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..obs.protocol import StatsMixin
from .packet import CONTROL_BYTES_PER_ACCESS, CoalescedRequest
from .request import RequestType


@dataclass(slots=True)
class MACStats(StatsMixin):
    """Counters accumulated while requests flow through the MAC.

    These feed every evaluation metric of section 5.3: coalescing
    efficiency (Fig. 10/11), bank conflicts (Fig. 12, together with the
    device stats), bandwidth efficiency/saving (Figs. 13/14) and targets
    per entry (Fig. 15).
    """

    MERGE_MAX = frozenset({"total_cycles"})
    SNAPSHOT_DERIVED = (
        "coalescing_efficiency",
        "avg_targets_per_packet",
        "coalesced_bandwidth_efficiency",
    )

    raw_requests: int = 0
    raw_loads: int = 0
    raw_stores: int = 0
    raw_fences: int = 0
    raw_atomics: int = 0
    coalesced_packets: int = 0
    bypassed_packets: int = 0
    merged_requests: int = 0
    #: Histogram: emitted packet size in bytes -> count.
    packet_sizes: Dict[int, int] = field(default_factory=dict)
    #: Per-packet target counts (Fig. 15 distribution).
    targets_per_packet: List[int] = field(default_factory=list)
    payload_bytes: int = 0
    stall_cycles: int = 0
    total_cycles: int = 0

    # -- recording ------------------------------------------------------------

    def record_raw(self, rtype) -> None:
        self.raw_requests += 1
        if rtype is RequestType.LOAD:
            self.raw_loads += 1
        elif rtype is RequestType.STORE:
            self.raw_stores += 1
        elif rtype is RequestType.FENCE:
            self.raw_fences += 1
        else:
            self.raw_atomics += 1

    def record_packet(self, packet: CoalescedRequest) -> None:
        self.coalesced_packets += 1
        if packet.bypassed:
            self.bypassed_packets += 1
        self.merged_requests += packet.raw_count
        self.packet_sizes[packet.size] = self.packet_sizes.get(packet.size, 0) + 1
        self.targets_per_packet.append(packet.raw_count)
        self.payload_bytes += packet.size

    # -- derived metrics -------------------------------------------------------

    @property
    def memory_raw_requests(self) -> int:
        """Raw requests that actually address memory (fences excluded)."""
        return self.raw_requests - self.raw_fences

    @property
    def coalescing_efficiency(self) -> float:
        """Fraction of raw requests eliminated by coalescing (Eq. 3).

        See DESIGN.md section 3 on the reduction-fraction reading of the
        paper's Eq. 3.  A fence-only/atomic-only stream that still emitted
        packets has no defined efficiency — ``nan``, never ``0.0``, so a
        sweep cannot rank the empty cell as a valid best point.
        """
        if self.memory_raw_requests == 0:
            return math.nan if self.coalesced_packets else 0.0
        return 1.0 - self.coalesced_packets / self.memory_raw_requests

    @property
    def avg_targets_per_packet(self) -> float:
        """Average merged raw requests per emitted packet (Fig. 15)."""
        if not self.targets_per_packet:
            return 0.0
        return sum(self.targets_per_packet) / len(self.targets_per_packet)

    @property
    def max_targets_per_packet(self) -> int:
        return max(self.targets_per_packet, default=0)

    @property
    def coalesced_wire_bytes(self) -> int:
        """Link bytes moved with MAC: payload + 32 B control per packet."""
        return self.payload_bytes + CONTROL_BYTES_PER_ACCESS * self.coalesced_packets

    def raw_wire_bytes(self, flit_bytes: int = 16) -> int:
        """Link bytes if every raw request went out as one 16 B packet."""
        return (flit_bytes + CONTROL_BYTES_PER_ACCESS) * self.memory_raw_requests

    @property
    def coalesced_bandwidth_efficiency(self) -> float:
        """Payload fraction of the coalesced traffic (Eq. 1, Fig. 13)."""
        wire = self.coalesced_wire_bytes
        return self.payload_bytes / wire if wire else 0.0

    def bandwidth_saved_bytes(self) -> int:
        """Control bytes saved by aggregation (Fig. 14's metric).

        The paper counts the *control* traffic eliminated: every raw
        request avoided saves its 32 B header/tail pair, so the saving is
        32 B x (raw requests - packets).  Overfetched payload is not
        charged — consistent with Eq. 1, which counts all payload as
        useful.  See :meth:`wire_saved_bytes` for the net-wire view.
        """
        return CONTROL_BYTES_PER_ACCESS * (
            self.memory_raw_requests - self.coalesced_packets
        )

    def wire_saved_bytes(self, flit_bytes: int = 16) -> int:
        """Net link bytes saved vs. raw dispatch (charges overfetch).

        Unlike Fig. 14's control-only metric this can go negative for
        barely-coalescable traffic, where the 64 B minimum packet ships
        more payload than the requests demanded.
        """
        return self.raw_wire_bytes(flit_bytes) - self.coalesced_wire_bytes

    # ``snapshot``/``merge``/``reset`` come from StatsMixin;
    # ``total_cycles`` combines with ``max`` (wall-clock anchor, not a sum).
