"""The MAC core: the paper's primary contribution (sections 3-4).

Public surface:

* :class:`MACConfig`, :class:`SystemConfig` — configuration (Table 1).
* :class:`MemoryRequest`, :class:`RequestType`, :class:`Target` — raw
  request primitives.
* :class:`AddressCodec` — physical address layout (Fig. 5).
* :class:`FlitMap` — per-row request bitmap (Fig. 6).
* :class:`FlitTable`, :class:`FlitTablePolicy` — stage-2 lookup (Fig. 8).
* :class:`AggregatedRequestQueue`, :class:`ARQEntry` — the ARQ.
* :class:`RawRequestAggregator` — cycle model of the intake stage.
* :class:`RequestBuilder` — the two-stage pipelined builder.
* :class:`RequestRouter`, :class:`ResponseRouter`, :class:`FIFOQueue` —
  node front-end routing (sections 3.1/3.3).
* :class:`MAC` — the fully wired coalescer (cycle engine).
* :func:`coalesce_trace_fast` — steady-state window engine for sweeps.
* :class:`CoalescedRequest`, :class:`CoalescedResponse` — device-side
  transaction types.
* :class:`MACStats` — evaluation counters.
"""

from .address import AddressCodec
from .aggregator import RawRequestAggregator
from .arq import AggregatedRequestQueue, ARQEntry
from .builder import RequestBuilder, bypass_packet
from .config import MACConfig, PAPER_CONFIG, PAPER_SYSTEM, SystemConfig
from .flit import FlitMap
from .flit_table import BuiltSegment, FlitTable, FlitTablePolicy
from .mac import MAC, coalesce_trace_fast
from .packet import (
    CONTROL_BYTES_PER_ACCESS,
    CONTROL_BYTES_PER_PACKET,
    CoalescedRequest,
    CoalescedResponse,
)
from .request import MemoryRequest, RequestType, Target, TARGET_BYTES
from .router import FIFOQueue, RequestRouter, ResponseRouter
from .stats import MACStats

__all__ = [
    "AddressCodec",
    "AggregatedRequestQueue",
    "ARQEntry",
    "BuiltSegment",
    "CONTROL_BYTES_PER_ACCESS",
    "CONTROL_BYTES_PER_PACKET",
    "CoalescedRequest",
    "CoalescedResponse",
    "FIFOQueue",
    "FlitMap",
    "FlitTable",
    "FlitTablePolicy",
    "MAC",
    "MACConfig",
    "MACStats",
    "MemoryRequest",
    "PAPER_CONFIG",
    "PAPER_SYSTEM",
    "RawRequestAggregator",
    "RequestBuilder",
    "RequestRouter",
    "RequestType",
    "ResponseRouter",
    "SystemConfig",
    "TARGET_BYTES",
    "Target",
    "bypass_packet",
    "coalesce_trace_fast",
]
