"""Two-stage pipelined Request Builder (paper section 4.2, Fig. 8).

Stage 1 (1 cycle) OR-reduces the 16-bit FLIT map of the entry popped from
the ARQ into 4 group bits, one per 64 B chunk of the 256 B row.  Stage 2
(2 cycles: table lookup + assembly) consults the FLIT table and emits the
coalesced transaction(s).  The pipeline therefore issues at a steady rate
of one packet every 2 cycles once primed (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim import register_wake_protocol
from .address import AddressCodec
from .arq import ARQEntry
from .config import MACConfig
from .flit_table import FlitTable, FlitTablePolicy
from .packet import CoalescedRequest
from .request import RequestType


@dataclass(slots=True)
class _StageSlot:
    """Pipeline latch between/inside builder stages."""

    entry: ARQEntry
    pattern: int = 0
    remaining: int = 0


@register_wake_protocol
class RequestBuilder:
    """Cycle-level model of the two-stage pipelined request builder.

    Stage 1's OR-reduction goes through :meth:`FlitMap.group_bits
    <repro.core.flit.FlitMap.group_bits>`, which serves the paper
    geometry from the precomputed vector table when the
    ``REPRO_SIM_VECTOR`` kernels are on.
    """

    def __init__(
        self,
        config: MACConfig,
        codec: Optional[AddressCodec] = None,
        policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    ) -> None:
        self.config = config
        self.codec = codec or AddressCodec(config)
        self.table = FlitTable(
            groups=config.groups_per_row,
            chunk_bytes=config.min_request_bytes,
            policy=policy,
        )
        self._stage1: Optional[_StageSlot] = None
        self._stage2: Optional[_StageSlot] = None
        self.built_packets = 0
        self.built_rows = 0

    # -- occupancy -----------------------------------------------------------

    @property
    def stage1_busy(self) -> bool:
        return self._stage1 is not None

    @property
    def stage2_busy(self) -> bool:
        return self._stage2 is not None

    @property
    def busy(self) -> bool:
        return self.stage1_busy or self.stage2_busy

    def can_accept(self) -> bool:
        """Whether stage 1 can latch a new ARQ entry this cycle."""
        return self._stage1 is None

    def pending_requests(self) -> int:
        """Raw requests latched in the pipeline (conservation checks)."""
        return sum(
            len(slot.entry.requests)
            for slot in (self._stage1, self._stage2)
            if slot is not None
        )

    # -- pipeline ------------------------------------------------------------

    def accept(self, entry: ARQEntry) -> None:
        """Latch an ARQ entry into stage 1 (must be non-bypass, non-fence)."""
        if not self.can_accept():
            raise RuntimeError("builder stage 1 is busy")
        if entry.fence or entry.atomic:
            raise ValueError("fences/atomics bypass the request builder")
        self._stage1 = _StageSlot(entry)

    def tick(self, cycle: int) -> List[CoalescedRequest]:
        """Advance the pipeline one cycle; return any packets completed.

        Stage 2 is modelled as a 2-cycle occupancy (lookup, assemble);
        stage 1 results move into stage 2 when it frees up, so the
        steady-state issue rate is one row every ``pop_interval`` cycles.
        """
        out: List[CoalescedRequest] = []

        # Stage 2: count down assembly; emit on completion.
        if self._stage2 is not None:
            self._stage2.remaining -= 1
            if self._stage2.remaining <= 0:
                out.extend(self._emit(self._stage2, cycle))
                self._stage2 = None

        # Stage 1 -> stage 2 transfer (group OR takes the single cycle).
        if self._stage1 is not None and self._stage2 is None:
            slot = self._stage1
            slot.pattern = slot.entry.flit_map.group_bits(self.config.groups_per_row)
            slot.remaining = self.config.builder_stage2_cycles
            self._stage2 = slot
            self._stage1 = None

        return out

    def flush(self, cycle: int) -> List[CoalescedRequest]:
        """Drain both stages immediately (end-of-simulation helper)."""
        out: List[CoalescedRequest] = []
        if self._stage2 is not None:
            out.extend(self._emit(self._stage2, cycle))
            self._stage2 = None
        if self._stage1 is not None:
            slot = self._stage1
            slot.pattern = slot.entry.flit_map.group_bits(self.config.groups_per_row)
            out.extend(self._emit(slot, cycle))
            self._stage1 = None
        return out

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """A primed pipeline moves every cycle; an empty one never.

        Stage occupancy changes each tick while anything is latched
        (stage 2 counts down, stage 1 transfers), so a busy builder pins
        its owner to lockstep; empty, it schedules no wake of its own.
        """
        return now if self.busy else None

    def skip_to(self, target: int) -> None:
        """No per-cycle state outside the stage latches: idle skip is free."""

    # -- packet assembly -----------------------------------------------------

    def build(self, entry: ARQEntry, cycle: int = 0) -> List[CoalescedRequest]:
        """Functional (non-pipelined) build of an entry's packets.

        Used by the fast window engine and by tests; produces exactly what
        the pipeline would emit.
        """
        pattern = entry.flit_map.group_bits(self.config.groups_per_row)
        return self._emit(_StageSlot(entry, pattern), cycle)

    def _emit(self, slot: _StageSlot, cycle: int) -> List[CoalescedRequest]:
        entry = slot.entry
        row_base = self.codec.key_row(entry.key) << self.config.row_offset_bits
        rtype = self.codec.key_type(entry.key)
        segments = self.table.lookup(slot.pattern)
        packets: List[CoalescedRequest] = []
        chunk = self.config.min_request_bytes
        for seg in segments:
            seg_lo = seg.offset * self.config.flits_per_group
            seg_hi = (seg.offset + seg.length) * self.config.flits_per_group
            idx = [
                i
                for i, t in enumerate(entry.targets)
                if seg_lo <= t.flit_id < seg_hi
            ]
            packets.append(
                CoalescedRequest(
                    addr=row_base + seg.offset * chunk,
                    size=seg.length * chunk,
                    rtype=rtype,
                    targets=[entry.targets[i] for i in idx],
                    requests=[entry.requests[i] for i in idx],
                    issue_cycle=cycle,
                )
            )
        self.built_packets += len(packets)
        self.built_rows += 1
        return packets


def bypass_packet(
    entry: ARQEntry, codec: AddressCodec, config: MACConfig, cycle: int = 0
) -> CoalescedRequest:
    """Build the single-FLIT packet for a B-bit (bypass) entry.

    Bypass entries skip the builder and go straight to the device as
    minimum-granularity (16 B) transactions (section 4.1.2).  Atomics
    likewise travel as single uncoalesced packets.
    """
    if entry.fence:
        raise ValueError("fences produce no memory packet")
    req = entry.requests[0]
    flit = entry.targets[0].flit_id
    if entry.atomic:
        rtype = RequestType.ATOMIC
        addr = codec.row_base(req.addr) + flit * config.flit_bytes
    else:
        rtype = codec.key_type(entry.key)
        addr = (
            codec.key_row(entry.key) << config.row_offset_bits
        ) + flit * config.flit_bytes
    return CoalescedRequest(
        addr=addr,
        size=config.flit_bytes,
        rtype=rtype,
        targets=list(entry.targets),
        requests=list(entry.requests),
        bypassed=True,
        issue_cycle=cycle,
    )
