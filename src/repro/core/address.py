"""Physical address codec (paper Fig. 5 and section 4.1).

The MAC partitions a physical address into:

* ``flit offset``  — bits 0..3, the byte offset inside one 16 B FLIT
  (ignored by the coalescer);
* ``flit id``      — bits 4..7, which of the 16 FLITs of the 256 B row is
  requested;
* ``row number``   — bits 8.., the index of the HMC DRAM row (vault, bank
  and in-bank row bits combined).

Two extension bits augment the row number inside the ARQ
(section 4.1.2): the ``T`` (type) bit, placed just above the 52-bit
physical address so that loads and stores to the same row compare unequal
with a single comparator, and the ``B`` (bypass) bit, which marks entries
that cannot coalesce further.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MACConfig
from .request import MemoryRequest, RequestType


@dataclass(frozen=True, slots=True)
class AddressCodec:
    """Bit-level encode/decode of physical addresses for one MAC config."""

    config: MACConfig

    # -- basic field extraction ------------------------------------------

    def row_number(self, addr: int) -> int:
        """DRAM row index of ``addr`` (address >> row_offset_bits)."""
        self._check(addr)
        return addr >> self.config.row_offset_bits

    def row_offset(self, addr: int) -> int:
        """Byte offset of ``addr`` inside its DRAM row."""
        self._check(addr)
        return addr & (self.config.row_bytes - 1)

    def flit_id(self, addr: int) -> int:
        """FLIT index (0..15 for 256 B rows) of ``addr`` inside its row."""
        self._check(addr)
        return self.row_offset(addr) >> self.config.flit_offset_bits

    def flit_offset(self, addr: int) -> int:
        """Byte offset of ``addr`` inside its FLIT (bits 0..3)."""
        self._check(addr)
        return addr & (self.config.flit_bytes - 1)

    def row_base(self, addr: int) -> int:
        """Byte address of the first byte of the row containing ``addr``."""
        self._check(addr)
        return addr & ~(self.config.row_bytes - 1)

    # -- composition ------------------------------------------------------

    def compose(self, row: int, flit: int = 0, offset: int = 0) -> int:
        """Build a physical address from (row number, flit id, byte offset)."""
        cfg = self.config
        if not 0 <= flit < cfg.flits_per_row:
            raise ValueError(f"flit id {flit} out of range")
        if not 0 <= offset < cfg.flit_bytes:
            raise ValueError(f"flit offset {offset} out of range")
        addr = (row << cfg.row_offset_bits) | (flit << cfg.flit_offset_bits) | offset
        self._check(addr)
        return addr

    # -- ARQ comparator key ------------------------------------------------

    def arq_key(self, request: MemoryRequest) -> int:
        """The single-comparator key used by the ARQ (section 4.1.2).

        The key is the row number with the T bit spliced in as its most
        significant bit, so one integer comparison distinguishes both the
        target row and the request type.
        """
        if not request.rtype.coalescable:
            raise ValueError("only loads/stores carry an ARQ key")
        row_bits = self.config.phys_addr_bits - self.config.row_offset_bits
        t = request.rtype.t_bit
        return (t << row_bits) | self.row_number(request.addr)

    def key_row(self, key: int) -> int:
        """Recover the row number from an ARQ key."""
        row_bits = self.config.phys_addr_bits - self.config.row_offset_bits
        return key & ((1 << row_bits) - 1)

    def key_type(self, key: int) -> RequestType:
        """Recover the request type (load/store) from an ARQ key."""
        row_bits = self.config.phys_addr_bits - self.config.row_offset_bits
        return RequestType.STORE if (key >> row_bits) & 1 else RequestType.LOAD

    # -- helpers -----------------------------------------------------------

    def _check(self, addr: int) -> None:
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        if addr >> self.config.phys_addr_bits:
            raise ValueError(
                f"address {addr:#x} exceeds {self.config.phys_addr_bits}-bit "
                "physical address space"
            )
