"""Configuration of the MAC unit (paper Table 1 and sections 4.1-4.2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class MACConfig:
    """All tunables of the Memory Access Coalescer.

    Defaults reproduce the paper's simulated configuration (Table 1):
    a 32-entry ARQ with 64 B entries in front of an HMC with 256 B rows,
    16 B FLITs, one ARQ accept per cycle and one ARQ pop every 2 cycles
    (the request-builder pipeline issues 0.5 requests/cycle, section 4.4).
    """

    #: Number of Aggregated Request Queue entries (Fig. 11 sweeps this).
    arq_entries: int = 32
    #: Bytes of storage per ARQ entry; bounds how many targets fit.
    arq_entry_bytes: int = 64
    #: DRAM row length of the attached device; 256 B for HMC (section 4.1).
    row_bytes: int = 256
    #: FLIT (flow-control unit) size of the HMC protocol.
    flit_bytes: int = 16
    #: Minimum transaction granularity emitted by the request builder.
    min_request_bytes: int = 64
    #: Maximum transaction size supported by the device (HMC 2.1: 256 B).
    max_request_bytes: int = 256
    #: Raw requests accepted into the ARQ per cycle (section 4.4).
    accepts_per_cycle: int = 1
    #: Cycles between ARQ pops; 2 because the builder pipeline issues at
    #: 0.5 requests/cycle (section 4.4).
    pop_interval: int = 2
    #: Request-builder pipeline depth: stage 1 (group OR) takes 1 cycle,
    #: stage 2 (FLIT-table lookup + assembly) takes 2 cycles (section 4.2.1).
    builder_stage1_cycles: int = 1
    builder_stage2_cycles: int = 2
    #: Physical-address width; bit 52 doubles as the T (type) bit
    #: (section 4.1.2).
    phys_addr_bits: int = 52
    #: Enable the latency-hiding bypass: when the free-entry counter
    #: exceeds half the ARQ size, incoming requests skip the comparators
    #: and fill free entries directly (section 4.1).
    latency_hiding: bool = True
    #: Bytes of fixed target bookkeeping in each entry: the extended 64-bit
    #: address (row number + B/T bits) plus the 16-bit FLIT map occupy 10 B
    #: (section 5.3.3).
    entry_header_bytes: int = 10

    def __post_init__(self) -> None:
        if self.arq_entries < 1:
            raise ValueError("ARQ needs at least one entry")
        if self.row_bytes % self.flit_bytes:
            raise ValueError("row size must be a multiple of the FLIT size")
        if self.flits_per_row > 64:
            raise ValueError("FLIT map wider than 64 bits is unsupported")
        if self.min_request_bytes % self.flit_bytes:
            raise ValueError("min request size must be FLIT aligned")
        if self.max_request_bytes > self.row_bytes:
            raise ValueError("requests may not exceed one DRAM row")
        if self.pop_interval < 1:
            raise ValueError("pop interval must be positive")

    @property
    def flits_per_row(self) -> int:
        """FLITs per DRAM row: 16 for the 256 B HMC row."""
        return self.row_bytes // self.flit_bytes

    @property
    def flits_per_group(self) -> int:
        """FLITs per builder group (64 B chunk -> 4 FLITs)."""
        return self.min_request_bytes // self.flit_bytes

    @property
    def groups_per_row(self) -> int:
        """Builder stage-1 groups per row (4 for 256 B rows / 64 B chunks)."""
        return self.row_bytes // self.min_request_bytes

    @property
    def row_offset_bits(self) -> int:
        """Address bits holding the in-row offset (8 for 256 B rows)."""
        return (self.row_bytes - 1).bit_length()

    @property
    def flit_offset_bits(self) -> int:
        """Address bits holding the in-FLIT byte offset (4 for 16 B FLITs)."""
        return (self.flit_bytes - 1).bit_length()

    @property
    def target_capacity(self) -> int:
        """Distinct raw requests one ARQ entry can merge (12 in the paper).

        64 B entry - 10 B header leaves 54 B; at 4.5 B per target that is
        12 targets (section 5.3.3).
        """
        from .request import TARGET_BYTES

        usable = self.arq_entry_bytes - self.entry_header_bytes
        return int(usable // TARGET_BYTES)

    @property
    def bypass_threshold(self) -> int:
        """Free-entry count beyond which latency hiding engages.

        The paper: "if the counter reaches a value N larger than half of
        the ARQ size" (section 4.1).
        """
        return self.arq_entries // 2


#: The exact configuration evaluated in the paper (Table 1).
PAPER_CONFIG = MACConfig()


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Node-level parameters from Table 1 used across experiments."""

    cores: int = 8
    cpu_freq_ghz: float = 3.3
    spm_bytes: int = 1 << 20  # 1 MB per core
    spm_latency_ns: float = 1.0
    hmc_links: int = 4
    hmc_capacity_gb: int = 8
    hmc_latency_ns: float = 93.0
    mac: MACConfig = field(default_factory=MACConfig)

    @property
    def spm_latency_cycles(self) -> int:
        return max(1, round(self.spm_latency_ns * self.cpu_freq_ghz))

    @property
    def hmc_latency_cycles(self) -> int:
        return max(1, round(self.hmc_latency_ns * self.cpu_freq_ghz))


PAPER_SYSTEM = SystemConfig()
