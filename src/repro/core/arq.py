"""Aggregated Request Queue — the heart of the Raw Request Aggregator.

The ARQ (paper section 4.1, Fig. 5) is a FIFO of entries, each holding one
pending coalesced row access: the extended row key (row number + T bit),
a FLIT map, a bypass (B) bit and the target list of every merged raw
request.  Each entry is associated with a comparator; an incoming raw
request is compared against all pending entries simultaneously and merged
on a key hit, otherwise a new entry is allocated at the tail.

Fences disable the comparators until they drain (section 4.1); the
latency-hiding mechanism bypasses the comparators entirely while more than
half of the queue is free (section 4.1); single-request entries carry the
B bit and skip the request builder (section 4.1.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..obs.tracer import NULL_TRACER
from ..sim import register_wake_protocol
from ..sim import vector as _vector
from ..sim.watchdog import sanitize_enabled
from .address import AddressCodec
from .config import MACConfig
from .flit import FlitMap
from .request import MemoryRequest, Target


@dataclass(slots=True)
class ARQEntry:
    """One pending (possibly coalesced) row access.

    Attributes:
        key: comparator key — row number with the T bit as its MSB.
        flit_map: bitmap of requested FLITs in the row.
        targets: target info of every merged raw request, in merge order.
        bypass: the B bit — set when the entry can no longer coalesce
            (single-request rows and fences bypass the builder).
        fence: whether this entry is a memory-fence marker.
        atomic: whether this entry is an uncoalescable atomic operation.
        alloc_cycle: cycle at which the entry was allocated (stats).
        requests: the raw requests merged here (kept for response routing
            and conservation checks; hardware would keep only targets).
    """

    key: int
    flit_map: FlitMap
    targets: List[Target] = field(default_factory=list)
    bypass: bool = False
    fence: bool = False
    atomic: bool = False
    alloc_cycle: int = 0
    requests: List[MemoryRequest] = field(default_factory=list)

    @property
    def target_count(self) -> int:
        return len(self.targets)


@register_wake_protocol
class AggregatedRequestQueue:
    """FIFO of ARQEntry with associative merge, fences and bypass.

    This class models the queue *structure*; the cycle-by-cycle accept/pop
    cadence lives in :class:`repro.core.aggregator.RawRequestAggregator`.

    Comparator tie-break: when several in-flight entries match a
    candidate key (possible via latency-hiding bypass fills, which
    allocate without consulting the comparators, and via capacity
    evictions), the *oldest* mergeable entry wins — a hardware priority
    encoder over the comparator hit vector resolves towards the head of
    the FIFO.  The ``_index`` dict therefore always maps a key to the
    oldest mergeable same-epoch entry, and :meth:`_unindex` promotes the
    next-oldest duplicate when the winner leaves.  The vectorized
    argmax-style match (:func:`repro.sim.vector.oldest_match`) encodes
    the same rule over all entries at once; under ``REPRO_SIM_CHECK=1``
    every dict hit is cross-validated against it.
    """

    def __init__(
        self, config: MACConfig, codec: Optional[AddressCodec] = None, tracer=NULL_TRACER
    ):
        self.config = config
        self.codec = codec or AddressCodec(config)
        self.tracer = tracer
        self._entries: Deque[ARQEntry] = deque()
        # Row-key index for O(1) comparator emulation.  Hardware compares
        # all entries in parallel; a dict gives identical semantics.  Only
        # mergeable entries (comparators enabled, not full, not bypassed)
        # are indexed.
        self._index: Dict[int, ARQEntry] = {}
        # Entries allocated *before* the youngest pending fence.  A fence
        # demotes the whole live index here: merging into a pre-fence
        # entry would reorder across the fence, so a key hit on this side
        # counts as ``fence_blocked_merges`` instead.  Requests arriving
        # after the fence form a new epoch in ``_index`` and may merge
        # among themselves — exactly what the window engine does.
        self._fenced_index: Dict[int, ARQEntry] = {}
        # Comparators disabled while a fence is pending (section 4.1).
        self._fence_pending = 0
        # Latency-hiding bypass (section 4.1) is edge-triggered: when the
        # free-entry counter *reaches* a value N greater than half the
        # ARQ, the N following raw requests skip the comparators and fill
        # free entries directly; the mechanism re-arms once the queue has
        # been busy (free <= threshold) again.
        self._bypass_budget = 0
        self._bypass_armed = True
        # Keys for which more than one in-flight entry may match (bypass
        # fills / fence demotes); drives the oldest-wins promotion in
        # :meth:`_unindex` without scanning the queue on every pop.
        self._dup_keys: set = set()
        # Cross-validate dict hits against the vectorized all-entries
        # comparator match (oldest-wins) when the sanitizer is armed.
        self._check_match = sanitize_enabled()
        # Stats hooks.
        self.merges = 0
        self.allocations = 0
        self.fence_blocked_merges = 0
        self.bypass_fills = 0

    # -- capacity ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        """The free-entry counter driving latency hiding (section 4.1)."""
        return self.config.arq_entries - len(self._entries)

    @property
    def full(self) -> bool:
        return self.free_entries == 0

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def comparators_enabled(self) -> bool:
        return self._fence_pending == 0

    def entries(self) -> List[ARQEntry]:
        """Snapshot of pending entries in FIFO order (oldest first)."""
        return list(self._entries)

    # -- insertion -------------------------------------------------------------

    def push(self, request: MemoryRequest, cycle: int = 0) -> bool:
        """Insert one raw request; returns False when the queue is full.

        Implements the full section-4.1 semantics: associative merge on a
        row-key hit, fence handling, atomic bypass, target-capacity limits
        and the latency-hiding comparator bypass.
        """
        if request.is_fence:
            return self._push_fence(request, cycle)
        if request.is_atomic:
            return self._push_atomic(request, cycle)

        key = self.codec.arq_key(request)

        if self.config.latency_hiding:
            free = self.free_entries
            if free <= self.config.bypass_threshold:
                self._bypass_armed = True
            elif self._bypass_armed and self._bypass_budget == 0:
                # Counter crossed the threshold: burst-fill the N free
                # entries with the N following requests (section 4.1).
                self._bypass_armed = False
                self._bypass_budget = free
            if self._bypass_budget > 0:
                self._bypass_budget -= 1
                self.bypass_fills += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        "arq", "bypass_fill", cycle, key=key, free=self.free_entries
                    )
                return self._allocate(request, key, cycle)

        # Only same-epoch entries (allocated since the youngest fence) are
        # mergeable; a key hit on the pre-fence side is exactly the merge
        # the fence forbids.
        hit = self._index.get(key)
        if self._check_match and self.match_oldest(key) is not hit:
            from ..sim.watchdog import InvariantViolation

            raise InvariantViolation(
                cycle,
                f"comparator divergence for key {key}: indexed hit does not "
                "match the oldest-wins vectorized scan",
            )
        if hit is not None:
            self._merge(hit, request, cycle)
            return True
        if self._fence_pending and key in self._fenced_index:
            self.fence_blocked_merges += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "arq", "fence_blocked", cycle, key=key,
                    pending_fences=self._fence_pending,
                )

        return self._allocate(request, key, cycle)

    def _merge(self, entry: ARQEntry, request: MemoryRequest, cycle: int = 0) -> None:
        flit = self.codec.flit_id(request.addr)
        entry.flit_map.set(flit)
        entry.targets.append(Target(request.tid, request.tag, flit))
        entry.requests.append(request)
        entry.bypass = False  # >1 targets: goes through the builder
        self.merges += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "arq", "merge", cycle, key=entry.key, targets=entry.target_count
            )
        if entry.target_count >= self.config.target_capacity:
            # Entry full: stop indexing it so further requests allocate anew.
            self._unindex(entry)

    def _allocate(self, request: MemoryRequest, key: int, cycle: int) -> bool:
        if self.full:
            return False
        flit = self.codec.flit_id(request.addr)
        fmap = FlitMap(self.config.flits_per_row)
        fmap.set(flit)
        entry = ARQEntry(
            key=key,
            flit_map=fmap,
            targets=[Target(request.tid, request.tag, flit)],
            bypass=True,  # single request so far -> B bit set
            alloc_cycle=cycle,
            requests=[request],
        )
        self._entries.append(entry)
        # A key may already be indexed (a bypass-filled or capacity-evicted
        # duplicate); the *oldest* mergeable entry keeps the comparator —
        # the priority encoder resolves towards the FIFO head — so a new
        # allocation never steals an existing key.  The duplicate is
        # remembered and promoted when the current winner leaves.
        if key in self._index:
            self._dup_keys.add(key)
        else:
            self._index[key] = entry
        self.allocations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "arq", "alloc", cycle, key=key, occupancy=len(self._entries)
            )
        return True

    def _push_fence(self, request: MemoryRequest, cycle: int) -> bool:
        if self.full:
            return False
        entry = ARQEntry(
            key=-1,
            flit_map=FlitMap(self.config.flits_per_row),
            bypass=True,
            fence=True,
            alloc_cycle=cycle,
            requests=[request],
        )
        self._entries.append(entry)
        self._fence_pending += 1
        # Start a new merge epoch: everything live moves to the blocked
        # side of the fence.  Oldest-wins holds across demotes too: a key
        # already fenced keeps its (older) entry, and the demoted
        # duplicate is promoted when it leaves.
        for key, demoted in self._index.items():
            if key in self._fenced_index:
                self._dup_keys.add(key)
            else:
                self._fenced_index[key] = demoted
        self._index.clear()
        if self.tracer.enabled:
            self.tracer.emit(
                "arq", "fence", cycle, pending_fences=self._fence_pending
            )
        return True

    def _push_atomic(self, request: MemoryRequest, cycle: int) -> bool:
        if self.full:
            return False
        flit = self.codec.flit_id(request.addr)
        fmap = FlitMap(self.config.flits_per_row)
        fmap.set(flit)
        entry = ARQEntry(
            key=-1,
            flit_map=fmap,
            targets=[Target(request.tid, request.tag, flit)],
            bypass=True,
            atomic=True,
            alloc_cycle=cycle,
            requests=[request],
        )
        self._entries.append(entry)
        return True

    # -- removal ---------------------------------------------------------------

    def pop(self) -> Optional[ARQEntry]:
        """Remove and return the oldest entry (None when empty)."""
        if not self._entries:
            return None
        # A pop while the queue is busy re-arms the latency-hiding
        # trigger: the free-entry counter is about to climb back towards
        # the threshold from the busy side.
        if self.free_entries <= self.config.bypass_threshold:
            self._bypass_armed = True
        entry = self._entries.popleft()
        if entry.fence:
            self._fence_pending -= 1
            assert self._fence_pending >= 0, "fence counter underflow"
            if self._fence_pending == 0:
                # Last fence drained; any leftover demoted keys are stale
                # (their entries popped before the fence, FIFO order).
                self._fenced_index.clear()
        else:
            self._unindex(entry)
        return entry

    def peek(self) -> Optional[ARQEntry]:
        return self._entries[0] if self._entries else None

    def _unindex(self, entry: ARQEntry) -> None:
        key = entry.key
        was_indexed = False
        if self._index.get(key) is entry:
            del self._index[key]
            was_indexed = True
        if self._fenced_index.get(key) is entry:
            del self._fenced_index[key]
            was_indexed = True
        if was_indexed and key in self._dup_keys:
            self._reindex_key(key)

    def _reindex_key(self, key: int) -> None:
        """Canonicalize the comparator winner for ``key`` (oldest-wins).

        Called only when a known-duplicated key loses its indexed winner:
        rescan the FIFO, give the oldest mergeable match on each side of
        the youngest fence its comparator back, and retire the duplicate
        marker once at most one match remains.
        """
        current: Optional[ARQEntry] = None  # oldest match since last fence
        fenced: Optional[ARQEntry] = None  # oldest match before it
        matches = 0
        cap = self.config.target_capacity
        for e in self._entries:
            if e.fence:
                if fenced is None:
                    fenced = current
                current = None
                continue
            if e.key != key or e.atomic or e.target_count >= cap:
                continue
            matches += 1
            if current is None:
                current = e
        if self._fence_pending:
            if fenced is None:
                self._fenced_index.pop(key, None)
            else:
                self._fenced_index[key] = fenced
        if current is None:
            self._index.pop(key, None)
        else:
            self._index[key] = current
        if matches <= 1:
            self._dup_keys.discard(key)

    # -- vectorized comparator match ----------------------------------------

    def comparator_view(self) -> List[Optional[int]]:
        """Comparator-visible key per entry, oldest first.

        ``None`` masks slots that cannot merge: fences, atomics, entries
        at target capacity, and — because merging across a fence would
        reorder — every entry allocated before the youngest pending
        fence.  This is the input the batch comparator kernel
        (:func:`repro.sim.vector.oldest_match`) operates on.
        """
        view: List[Optional[int]] = []
        cap = self.config.target_capacity
        for e in self._entries:
            if e.fence:
                # Everything before the fence is unmergeable this epoch.
                view = [None] * (len(view) + 1)
                continue
            if e.atomic or e.target_count >= cap:
                view.append(None)
            else:
                view.append(e.key)
        return view

    def match_oldest(self, key: int) -> Optional[ARQEntry]:
        """All-entries comparator match, oldest hit wins (hardware form).

        Semantically identical to the ``_index`` dict lookup (the
        equivalence is property-tested and sanitizer-checked); used as
        the reference for the vectorized argmax-style match.
        """
        idx = _vector.oldest_match(self.comparator_view(), key)
        if idx is None:
            return None
        return self._entries[idx]

    # -- quiescence skipping -------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Buffered entries act on the pop cadence; an empty queue never.

        The ARQ is a passive structure — its clocking (accept rate, pop
        cadence) lives in the aggregator — so its own wake is simply
        "now" while occupied and "no self-scheduled wake" when empty.
        """
        return None if not self._entries else now

    def skip_to(self, target: int) -> None:
        """No per-cycle state: skipping an empty ARQ is a no-op."""

    # -- introspection ------------------------------------------------------

    def pending_targets(self) -> int:
        """Total raw requests currently buffered."""
        return sum(e.target_count for e in self._entries)
