"""FLIT map — the per-row request bitmap of the ARQ (paper Fig. 6).

Each ARQ entry holds one ``FlitMap``: a 16-bit bitmap (for 256 B rows of
16 B FLITs) with one bit per FLIT of the row, set when any merged raw
request touches that FLIT.  The request builder's first stage OR-reduces
the map into one bit per 64 B group (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..sim import vector as _vector


@dataclass(slots=True)
class FlitMap:
    """Bitmap of requested FLITs within one DRAM row.

    Args:
        nflits: number of FLITs per row (16 for the paper's 256 B rows).
    """

    nflits: int = 16
    bits: int = field(default=0)

    def __post_init__(self) -> None:
        if not 1 <= self.nflits <= 64:
            raise ValueError("FLIT map supports 1..64 FLITs per row")
        if self.bits >> self.nflits:
            raise ValueError("bitmap has bits outside the row")

    # -- single-bit operations ---------------------------------------------

    def set(self, flit_id: int) -> None:
        """Mark ``flit_id`` as requested."""
        self._check(flit_id)
        self.bits |= 1 << flit_id

    def test(self, flit_id: int) -> bool:
        """Whether ``flit_id`` has been requested."""
        self._check(flit_id)
        return bool((self.bits >> flit_id) & 1)

    def clear(self) -> None:
        """Reset all bits (entry recycled)."""
        self.bits = 0

    # -- whole-map queries ---------------------------------------------------

    def count(self) -> int:
        """Number of distinct FLITs requested."""
        return self.bits.bit_count()

    def is_empty(self) -> bool:
        return self.bits == 0

    def flit_ids(self) -> Iterator[int]:
        """Iterate over set FLIT ids in ascending order."""
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def first(self) -> int:
        """Lowest requested FLIT id (raises on empty map)."""
        if not self.bits:
            raise ValueError("empty FLIT map")
        return (self.bits & -self.bits).bit_length() - 1

    def last(self) -> int:
        """Highest requested FLIT id (raises on empty map)."""
        if not self.bits:
            raise ValueError("empty FLIT map")
        return self.bits.bit_length() - 1

    # -- builder stage 1 -----------------------------------------------------

    def group_bits(self, groups: int = 4) -> int:
        """OR-reduce the map into ``groups`` equal chunks (stage 1, Fig. 8).

        Returns an integer whose bit *g* is set iff any FLIT in group *g*
        (a consecutive 64 B chunk for the default geometry) is requested.
        Bit 0 corresponds to the lowest-addressed chunk.

        When the vectorized kernels are enabled (``REPRO_SIM_VECTOR``,
        see :mod:`repro.sim.vector`) and the geometry is tableable, the
        reduction is one lookup in a precomputed table instead of a
        per-group shift-and-mask loop.
        """
        if groups < 1 or self.nflits % groups:
            raise ValueError(f"cannot split {self.nflits} FLITs into {groups} groups")
        if _vector.group_table_ready(self.nflits, groups):
            return _vector.group_bits(self.bits, self.nflits, groups)
        per = self.nflits // groups
        mask = (1 << per) - 1
        out = 0
        for g in range(groups):
            if (self.bits >> (g * per)) & mask:
                out |= 1 << g
        return out

    def copy(self) -> "FlitMap":
        return FlitMap(self.nflits, self.bits)

    def _check(self, flit_id: int) -> None:
        if not 0 <= flit_id < self.nflits:
            raise ValueError(f"flit id {flit_id} outside 0..{self.nflits - 1}")

    def __str__(self) -> str:  # e.g. "0000000000100000" for bit 5
        return format(self.bits, f"0{self.nflits}b")
