"""Raw Request Aggregator — cycle-level front stage of the MAC.

Couples the input FIFO(s) to the ARQ with the paper's cadence
(section 4.1/4.4): the ARQ accepts one raw request per cycle, and one
entry is popped towards the request builder every ``pop_interval``
(2) cycles.  Entries whose B bit is set bypass the builder and are
dispatched directly as 16 B transactions; fences retire silently once
they reach the head.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.attribution import NULL_ATTRIBUTION, StallCause
from ..obs.tracer import NULL_TRACER
from ..sim import register_wake_protocol
from .address import AddressCodec
from .arq import AggregatedRequestQueue
from .builder import RequestBuilder, bypass_packet
from .config import MACConfig
from .flit_table import FlitTablePolicy
from .packet import CoalescedRequest
from .request import MemoryRequest
from .stats import MACStats


@register_wake_protocol
class RawRequestAggregator:
    """Cycle model of ARQ intake + pop cadence + builder hand-off."""

    def __init__(
        self,
        config: MACConfig,
        codec: Optional[AddressCodec] = None,
        policy: FlitTablePolicy = FlitTablePolicy.SPAN,
        stats: Optional[MACStats] = None,
        tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
    ) -> None:
        self.config = config
        self.codec = codec or AddressCodec(config)
        self.tracer = tracer
        self.attrib = attrib
        self.arq = AggregatedRequestQueue(config, self.codec, tracer=tracer)
        self.builder = RequestBuilder(config, self.codec, policy)
        self.stats = stats if stats is not None else MACStats()
        self._cycle = 0
        # First pop lands one full interval in: a freshly allocated head
        # entry always gets at least pop_interval cycles of residency to
        # accumulate merges.
        self._next_pop = config.pop_interval

    @property
    def cycle(self) -> int:
        return self._cycle

    def idle(self) -> bool:
        """True when no request is buffered anywhere in the aggregator."""
        return self.arq.empty and not self.builder.busy

    def tick(self, incoming: Optional[MemoryRequest]) -> List[CoalescedRequest]:
        """Advance one cycle.

        Args:
            incoming: at most one raw request offered this cycle (the ARQ
                accept rate); ignored (and reported via the return of
                :meth:`accepted`) when the ARQ is full.

        Returns:
            Packets dispatched towards the memory device this cycle.
        """
        cycle = self._cycle
        out: List[CoalescedRequest] = []
        self._accepted_last = True
        at = self.attrib
        if at.enabled and not cycle & 63:
            # Per-cycle occupancy, pre-gated to every 64th cycle so the
            # hot tick path pays one bitmask check; the bounded sampler
            # decimates further on long runs.
            at.sample_depth("arq", cycle, len(self.arq))

        # Builder pipeline advances first (emits packets built previously).
        out.extend(self.builder.tick(cycle))

        # Pop cadence: one entry leaves the ARQ every pop_interval (2)
        # cycles — the paper's fixed 0.5 requests/cycle issuing rate
        # (section 4.4).  The B bit is checked at pop time: bypass and
        # fence entries skip the builder's 3-cycle pipeline (latency),
        # but not the pop cadence (bandwidth).  The fixed cadence also
        # gives entries queue residency to accumulate merges.
        if cycle >= self._next_pop and not self.arq.empty:
            head = self.arq.peek()
            assert head is not None
            tr = self.tracer
            if head.fence:
                self.arq.pop()  # fences retire without a memory packet
                self._next_pop = cycle + self.config.pop_interval
                if tr.enabled:
                    tr.emit("arq", "pop", cycle, kind="fence")
            elif head.bypass:
                entry = self.arq.pop()
                assert entry is not None
                out.append(bypass_packet(entry, self.codec, self.config, cycle))
                self._next_pop = cycle + self.config.pop_interval
                if tr.enabled:
                    tr.emit(
                        "arq", "pop", cycle, kind="bypass",
                        residency=cycle - entry.alloc_cycle,
                    )
                if at.enabled:
                    for req in entry.requests:
                        m = req.marks
                        if m is None:
                            m = req.marks = {}
                        m["arq_pop"] = cycle
            elif self.builder.can_accept():
                entry = self.arq.pop()
                assert entry is not None
                self.builder.accept(entry)
                self._next_pop = cycle + self.config.pop_interval
                if tr.enabled:
                    tr.emit(
                        "arq", "pop", cycle, kind="build",
                        targets=entry.target_count,
                        residency=cycle - entry.alloc_cycle,
                    )
                    tr.emit(
                        "builder", "occupancy", cycle,
                        stage1=self.builder.stage1_busy,
                        stage2=self.builder.stage2_busy,
                    )
                if at.enabled:
                    for req in entry.requests:
                        m = req.marks
                        if m is None:
                            m = req.marks = {}
                        m["arq_pop"] = cycle
            else:
                # Builder back-pressure; retry next cycle.
                if at.enabled:
                    at.stall_span(
                        "builder", StallCause.BUILDER_BUSY, cycle, cycle + 1
                    )

        # Intake: one request per cycle.
        if incoming is not None:
            accepted = self.arq.push(incoming, cycle)
            self._accepted_last = accepted
            if accepted:
                self.stats.record_raw(incoming.rtype)
                if at.enabled:
                    m = incoming.marks
                    if m is None:
                        m = incoming.marks = {}
                    m["arq_admit"] = cycle

        for pkt in out:
            self.stats.record_packet(pkt)
        if at.enabled and out:
            # Inlined AttributionCollector.mark (hot: every dispatched
            # raw request passes through here).
            for pkt in out:
                for req in pkt.requests:
                    m = req.marks
                    if m is None:
                        m = req.marks = {}
                    m["dispatch"] = cycle

        self._cycle += 1
        self.stats.total_cycles = self._cycle
        return out

    def accepted(self) -> bool:
        """Whether the request offered to the last tick() was accepted."""
        return self._accepted_last

    def next_event_cycle(self, now: int) -> Optional[int]:
        """A busy aggregator acts every cycle; an idle one never on its own.

        While anything is buffered (ARQ entries or builder latches) the
        pop cadence and the builder pipeline both advance each tick, so
        no cycle is skippable.  Idle, the next event belongs to whoever
        offers the next request.
        """
        return None if self.idle() else now

    def skip(self, start: int, end: int) -> None:
        """Fast-forward an idle aggregator over cycles [start, end).

        Only valid while :meth:`idle` holds (the skip engine guarantees
        it): replicates exactly what that many empty ``tick(None)`` calls
        would have done — advance the cycle counter / ``total_cycles``,
        leave ``_next_pop`` stale (a pop fires immediately once a request
        arrives, same as after idle lockstep cycles), and offer the same
        every-64th-cycle ARQ depth samples to the attribution collector
        so the strided sampler sees an identical observation sequence.

        Boundary pin (skip-equivalence audit): the span is half-open —
        cycle ``end`` itself is *not* accounted here.  A wake landing
        exactly on the skip target is executed by the following
        ``tick``, which reads ``_cycle == end`` and samples depth at
        ``end`` iff ``end % 64 == 0`` — exactly the tick lockstep would
        have run.  The sample replay below therefore stops *before*
        ``end`` (``cycle < end``), and the first replayed sample is the
        first multiple of 64 at or after ``start`` because the skipped
        lockstep ticks would have sampled at those same cycles with the
        same (idle-constant) depth.
        """
        at = self.attrib
        if at.enabled:
            depth = len(self.arq)
            cycle = start + (-start & 63)  # first multiple of 64 >= start
            while cycle < end:
                at.sample_depth("arq", cycle, depth)
                cycle += 64
        self._cycle = end
        self.stats.total_cycles = end
        self._accepted_last = True

    def skip_to(self, target: int) -> None:
        """Component-wheel alias for :meth:`skip` from the current cycle."""
        if target > self._cycle:
            self.skip(self._cycle, target)

    def drain(self) -> List[CoalescedRequest]:
        """Run the clock with no new input until everything is emitted."""
        out: List[CoalescedRequest] = []
        # Generous bound: every entry needs at most pop_interval +
        # builder-depth cycles to leave.
        guard = (len(self.arq) + 4) * (
            self.config.pop_interval + self.config.builder_stage2_cycles + 2
        ) + 16
        for _ in range(guard):
            if self.idle():
                break
            out.extend(self.tick(None))
        assert self.idle(), "aggregator failed to drain"
        return out
