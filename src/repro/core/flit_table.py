"""FLIT table — stage-2 lookup of the request builder (paper section 4.2.1).

The table maps the 4 group bits produced by builder stage 1 (one bit per
64 B chunk of the 256 B row) to the size of the coalesced transaction.
The paper's table emits 64, 128 or 256 B requests; the example in Fig. 7/8
maps pattern ``0110`` to a single 128 B transaction, i.e. the emitted
request is the smallest power-of-two span (in chunks) that covers every
requested chunk, anchored at the first requested chunk.

Because a bit pattern such as ``1001`` cannot be covered by a contiguous
128 B transaction, policies differ in how they handle sparse patterns:

* ``SPAN`` (paper semantics) — emit one transaction covering the chunk
  span ``[first_set, last_set]``, rounded up to a power of two; sparse
  patterns over-fetch but always produce exactly one packet.
* ``POPCOUNT`` — size by number of set chunks (1 -> 64, 2 -> 128,
  3/4 -> 256) anchored to cover the span; equals SPAN for contiguous
  patterns, under-covers sparse ones, so it is widened to the span when
  needed.  Kept as the literal reading of the paper's text.
* ``EXACT`` — emit one transaction per maximal run of set chunks; never
  over-fetches but may emit several packets per row (ablation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class FlitTablePolicy(enum.Enum):
    """How the FLIT table sizes transactions for a group-bit pattern."""

    SPAN = "span"
    POPCOUNT = "popcount"
    EXACT = "exact"


@dataclass(frozen=True, slots=True)
class BuiltSegment:
    """One (chunk offset, chunk length) transaction within a row.

    ``offset`` and ``length`` are in units of chunks (64 B for the default
    geometry); the builder converts them to byte addresses/sizes.
    """

    offset: int
    length: int


def _span_segments(pattern: int, groups: int) -> List[BuiltSegment]:
    """Single power-of-two-sized segment covering all set chunks."""
    if pattern == 0:
        return []
    first = (pattern & -pattern).bit_length() - 1
    last = pattern.bit_length() - 1
    span = last - first + 1
    # Round the span up to a power of two, capped at the row size.
    length = 1
    while length < span:
        length <<= 1
    length = min(length, groups)
    # Anchor so the segment stays inside the row.
    offset = min(first, groups - length)
    return [BuiltSegment(offset, length)]


def _popcount_segments(pattern: int, groups: int) -> List[BuiltSegment]:
    """Paper-text sizing by set-bit count, widened to cover the span."""
    if pattern == 0:
        return []
    count = pattern.bit_count()
    length = 1 if count == 1 else (2 if count == 2 else groups)
    first = (pattern & -pattern).bit_length() - 1
    last = pattern.bit_length() - 1
    if last - first + 1 > length:  # sparse pair like 1001: widen to cover
        return _span_segments(pattern, groups)
    offset = min(first, groups - length)
    return [BuiltSegment(offset, length)]


def _exact_segments(pattern: int, groups: int) -> List[BuiltSegment]:
    """One segment per maximal run of consecutive set chunks."""
    segments: List[BuiltSegment] = []
    g = 0
    while g < groups:
        if (pattern >> g) & 1:
            start = g
            while g < groups and (pattern >> g) & 1:
                g += 1
            segments.append(BuiltSegment(start, g - start))
        else:
            g += 1
    return segments


_POLICY_FN = {
    FlitTablePolicy.SPAN: _span_segments,
    FlitTablePolicy.POPCOUNT: _popcount_segments,
    FlitTablePolicy.EXACT: _exact_segments,
}


class FlitTable:
    """Precomputed lookup table: group-bit pattern -> built segments.

    Mirrors the hardware structure: a ``2**groups``-entry LUT whose lookup
    is a single cycle (section 4.2.1).  The table is immutable after
    construction.
    """

    def __init__(
        self,
        groups: int = 4,
        chunk_bytes: int = 64,
        policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    ) -> None:
        if groups < 1 or groups > 16:
            raise ValueError("FLIT table supports 1..16 groups")
        if chunk_bytes < 1:
            raise ValueError("chunk size must be positive")
        self.groups = groups
        self.chunk_bytes = chunk_bytes
        self.policy = policy
        fn = _POLICY_FN[policy]
        self._table: Tuple[Tuple[BuiltSegment, ...], ...] = tuple(
            tuple(fn(pattern, groups)) for pattern in range(1 << groups)
        )

    def lookup(self, pattern: int) -> Tuple[BuiltSegment, ...]:
        """Segments (chunk offset/length) for a stage-1 group-bit pattern."""
        if not 0 <= pattern < (1 << self.groups):
            raise ValueError(f"pattern {pattern:#x} outside {self.groups}-bit range")
        return self._table[pattern]

    def request_bytes(self, pattern: int) -> int:
        """Total transaction payload bytes emitted for ``pattern``."""
        return sum(s.length for s in self.lookup(pattern)) * self.chunk_bytes

    def packet_count(self, pattern: int) -> int:
        """Number of packets emitted for ``pattern`` (1 except EXACT)."""
        return len(self.lookup(pattern))

    @property
    def storage_bytes(self) -> int:
        """Hardware footprint of the LUT.

        The paper reports 12 B for the 16-entry table: each entry stores a
        size selector of 6 bits (2 bits size + 4 bits base), i.e.
        ``2**groups * 6 / 8`` bytes.
        """
        return (1 << self.groups) * 6 // 8

    def __repr__(self) -> str:
        return (
            f"FlitTable(groups={self.groups}, chunk_bytes={self.chunk_bytes}, "
            f"policy={self.policy.value})"
        )
