"""Coalesced transaction emitted by the MAC towards the 3D-stacked memory.

A :class:`CoalescedRequest` corresponds to one HMC request packet: a
contiguous byte range inside one DRAM row plus the target list of the raw
requests it satisfies.  The HMC device model (:mod:`repro.hmc`) consumes
these and produces :class:`CoalescedResponse` objects carrying the same
targets back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .request import MemoryRequest, RequestType, Target

#: Control overhead per HMC access: one 16 B header/tail FLIT on the
#: request packet and one on the response packet (paper section 2.2.2).
CONTROL_BYTES_PER_PACKET = 16
CONTROL_BYTES_PER_ACCESS = 32


@dataclass(slots=True)
class CoalescedRequest:
    """One packetized transaction bound for the 3D-stacked memory.

    Attributes:
        addr: byte address of the first byte of the transaction (FLIT
            aligned; chunk aligned for builder-emitted packets).
        size: payload size in bytes (16..256 for HMC 2.1).
        rtype: LOAD or STORE (atomics travel as ATOMIC bypass packets).
        targets: target info of each satisfied raw request.
        requests: the satisfied raw requests (simulation bookkeeping).
        bypassed: True when the packet skipped the request builder via the
            B bit (single-request rows, fences excluded).
        issue_cycle: cycle the MAC dispatched the packet.
    """

    addr: int
    size: int
    rtype: RequestType
    targets: List[Target] = field(default_factory=list)
    requests: List[MemoryRequest] = field(default_factory=list)
    bypassed: bool = False
    issue_cycle: int = 0
    #: Identity assigned by the response router when fault injection is
    #: on; used for timeout tracking and duplicate-response suppression.
    #: -1 = untracked (the fault-free fast path).
    packet_id: int = -1

    @property
    def end(self) -> int:
        """One past the last byte addressed by the transaction."""
        return self.addr + self.size

    @property
    def raw_count(self) -> int:
        """How many raw requests this packet satisfies."""
        return len(self.requests)

    @property
    def is_write(self) -> bool:
        return self.rtype is RequestType.STORE

    @property
    def wire_bytes(self) -> int:
        """Total link bytes for the access: payload + 32 B control.

        Reads carry payload on the response, writes on the request; either
        way one access moves ``size`` payload bytes plus one header/tail
        pair per packet of the request/response exchange.
        """
        return self.size + CONTROL_BYTES_PER_ACCESS

    def covers(self, addr: int) -> bool:
        """Whether a byte address falls inside this transaction."""
        return self.addr <= addr < self.end


@dataclass(slots=True)
class CoalescedResponse:
    """Response returned by the memory device for one coalesced request."""

    request: CoalescedRequest
    complete_cycle: int
    #: Cycles the device spent serving the transaction (queueing + DRAM).
    service_cycles: int = 0
    #: True when the device could not produce valid data (uncorrectable
    #: vault error or an injected poison fault); the response router
    #: propagates the mark to every satisfied raw request.
    poisoned: bool = False

    @property
    def targets(self) -> List[Target]:
        return self.request.targets

    @property
    def latency(self) -> int:
        return self.complete_cycle - self.request.issue_cycle


def satisfied_pairs(resp: CoalescedResponse) -> List[Tuple[Target, MemoryRequest]]:
    """Zip a response's targets with their raw requests for routing."""
    return list(zip(resp.request.targets, resp.request.requests))
