"""Raw memory request primitives.

A *raw request* is the unit of work emitted by a core towards the memory
subsystem: a single load/store of up to one FLIT (16 B) of data, a memory
fence, or an atomic operation.  Raw requests carry *target information*
(thread id, transaction tag, FLIT id) that the MAC preserves through
coalescing so the response router can satisfy each originating instruction
(paper section 3.3 and 4.1.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class RequestType(enum.IntEnum):
    """Kind of raw memory operation entering the MAC.

    The ``T`` bit in the ARQ distinguishes only loads (0) from stores (1);
    fences and atomics are handled specially (fences drain the ARQ, atomics
    bypass coalescing entirely, paper section 4.1.2).
    """

    LOAD = 0
    STORE = 1
    FENCE = 2
    ATOMIC = 3

    @property
    def t_bit(self) -> int:
        """The T (type) address-extension bit: 0 for loads, 1 for stores."""
        if self is RequestType.LOAD:
            return 0
        if self is RequestType.STORE:
            return 1
        raise ValueError(f"{self.name} requests carry no T bit")

    @property
    def coalescable(self) -> bool:
        """Whether this request kind may be merged in the ARQ."""
        return self in (RequestType.LOAD, RequestType.STORE)


# Field widths from paper section 4.1.1: TID and tag are 2 B each (64 K
# threads, 64 K transactions per thread); the FLIT id needs 4 bits for
# the 256 B HMC row.  The model admits up to 64 FLITs per row (6 bits)
# so the section-4.3 HBM geometry (1 KB rows) works unchanged; the
# TARGET_BYTES accounting below keeps the paper's 4.5 B figure for its
# 256 B configuration.
TID_BITS = 16
TAG_BITS = 16
FLIT_ID_BITS = 6
MAX_TID = (1 << TID_BITS) - 1
MAX_TAG = (1 << TAG_BITS) - 1

#: Bytes of target bookkeeping per merged request: 2 B TID + 2 B tag +
#: 4-bit FLIT id, rounded as in the paper to 4.5 B.
TARGET_BYTES = 4.5


@dataclass(frozen=True, slots=True)
class Target:
    """Target information of one raw request merged into an ARQ entry.

    Stored in the target segment of the FLIT map (Fig. 6) and used by the
    response router to deliver data back to the originating thread.
    """

    tid: int
    tag: int
    flit_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.tid <= MAX_TID:
            raise ValueError(f"tid {self.tid} outside 16-bit range")
        if not 0 <= self.tag <= MAX_TAG:
            raise ValueError(f"tag {self.tag} outside 16-bit range")
        if not 0 <= self.flit_id < (1 << FLIT_ID_BITS):
            raise ValueError(f"flit_id {self.flit_id} outside 4-bit range")


@dataclass(slots=True)
class MemoryRequest:
    """One raw memory operation travelling towards the 3D-stacked memory.

    Attributes:
        addr: 64-bit physical byte address of the access.
        rtype: load / store / fence / atomic.
        tid: issuing hardware thread id (16 bit).
        tag: per-thread transaction tag (16 bit).
        size: access size in bytes (word accesses are <= one 16 B FLIT).
        core: index of the issuing core (bookkeeping only).
        node: index of the issuing node; used by the request router to
            classify local vs. remote traffic.
        issue_cycle: cycle at which the request entered the memory
            subsystem; used for latency accounting.
    """

    addr: int
    rtype: RequestType
    tid: int = 0
    tag: int = 0
    size: int = 8
    core: int = 0
    node: int = 0
    issue_cycle: int = 0
    # Filled in by the response path for latency accounting.
    complete_cycle: int = field(default=-1, compare=False)
    #: Set by the response router when the satisfying response carried
    #: poisoned (invalid) data; the consumer must not trust the value.
    poisoned: bool = field(default=False, compare=False)
    #: Boundary-crossing cycle stamps written by an
    #: :class:`repro.obs.attribution.AttributionCollector` (``mark ->
    #: absolute cycle``); ``None`` whenever attribution is disabled.
    marks: Optional[Dict[str, int]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def is_fence(self) -> bool:
        return self.rtype is RequestType.FENCE

    @property
    def is_atomic(self) -> bool:
        return self.rtype is RequestType.ATOMIC

    @property
    def latency(self) -> int:
        """Observed request latency in cycles (-1 until completed)."""
        if self.complete_cycle < 0:
            return -1
        return self.complete_cycle - self.issue_cycle
