#!/usr/bin/env python3
"""HMC vs HBM behind the same MAC (the paper's section 4.3 claim).

Runs identical benchmark traffic through the MAC parameterized for each
stack's geometry (256 B vs 1 KB rows), then replays the coalesced
streams on the corresponding device models and compares activations,
conflicts and latency percentiles.

Run:  python examples/hbm_vs_hmc.py
"""

from repro.core import MACConfig, MACStats, coalesce_trace_fast
from repro.eval.report import bar_chart, pct
from repro.hbm import HBMDevice
from repro.hmc import HMCDevice
from repro.trace import to_requests
from repro.workloads import make

WORKLOADS = ("MG", "BFS", "IS")


def coalesce_for(row_bytes: int, requests):
    cfg = MACConfig(row_bytes=row_bytes, max_request_bytes=row_bytes)
    stats = MACStats()
    packets = coalesce_trace_fast(list(requests), cfg, stats=stats)
    return packets, stats


def main() -> None:
    print(f"{'':10s}{'HMC (256 B rows)':>24s}{'HBM (1 KB rows)':>24s}")
    print(f"{'workload':10s}{'eff':>8s}{'conf':>8s}{'p99':>8s}"
          f"{'eff':>8s}{'conf':>8s}{'p99':>8s}")
    effs_hmc, effs_hbm = {}, {}
    for name in WORKLOADS:
        trace = make(name).generate(threads=8, ops_per_thread=1200)

        pkts, st = coalesce_for(256, to_requests(trace))
        hmc = HMCDevice()
        for i, p in enumerate(pkts):
            hmc.submit(p, 2 * i)
        effs_hmc[name] = st.coalescing_efficiency
        hmc_row = (
            f"{st.coalescing_efficiency:>7.1%}{hmc.bank_conflicts:>8d}"
            f"{hmc.stats.p99_latency:>8.0f}"
        )

        pkts, st = coalesce_for(1024, to_requests(trace))
        hbm = HBMDevice()
        t = 0
        for p in pkts:
            hbm.submit(p, t)
            t += 2
        effs_hbm[name] = st.coalescing_efficiency
        hbm_row = f"{st.coalescing_efficiency:>7.1%}{hbm.bank_conflicts:>8d}{'-':>8s}"

        print(f"{name:10s}{hmc_row}{hbm_row}")

    print()
    print(bar_chart(effs_hmc, width=40, fmt=pct,
                    title="coalescing efficiency on HMC (256 B rows)"))
    print()
    print(bar_chart(effs_hbm, width=40, fmt=pct,
                    title="coalescing efficiency on HBM (1 KB rows)"))
    print()
    print("Same coalescer, wider FLIT map: the 1 KB HBM row exposes more")
    print("mergeable locality per entry (section 4.3), at the cost of")
    print("longer burst trains per transaction.")


if __name__ == "__main__":
    main()
