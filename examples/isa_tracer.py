#!/usr/bin/env python3
"""End-to-end from assembly: write a kernel, execute it, coalesce it.

The paper's methodology starts from real programs on a modified RISC-V
Spike (section 5.1).  This example does the same in miniature: a gather
kernel written in the bundled mini ISA is executed on 4 harts, its
memory trace falls out of the tracer, and the trace runs through the
MAC and the HMC device — assembly to bank conflicts in one script.

Run:  python examples/isa_tracer.py
"""

from repro.baselines import dispatch_raw
from repro.core import MACConfig, MACStats, coalesce_trace_fast
from repro.hmc import HMCDevice
from repro.isa import run_program
from repro.trace import summarize, to_requests

# Each hart scans its own chunk of idx[] and gathers from a shared
# table: idx loads stream, gathers scatter — the paper's SG pattern.
KERNEL = """
    # a0=&idx  a1=&table  a2=&dst  a3=start  a4=end
    mv    t0, a3
loop:
    bge   t0, a4, done
    slli  t1, t0, 3
    add   t2, a0, t1
    ld    t3, 0(t2)          # idx[i]
    slli  t3, t3, 3
    add   t4, a1, t3
    ld    t5, 0(t4)          # table[idx[i]]
    add   t6, a2, t1
    sd    t5, 0(t6)          # dst[i]
    addi  t0, t0, 1
    j     loop
done:
    halt
"""

IDX, TABLE, DST = 0x10000, 0x200000, 0x20000
COUNT, TABLE_WORDS, HARTS = 256, 1 << 13, 4


def main() -> None:
    import random

    rng = random.Random(3)
    indices = [rng.randrange(TABLE_WORDS) for _ in range(COUNT)]
    chunk = COUNT // HARTS

    machine = run_program(
        KERNEL,
        harts=HARTS,
        data={
            IDX: indices,
            TABLE: [v * 11 for v in range(TABLE_WORDS)],
        },
        init_regs={
            h: {10: IDX, 11: TABLE, 12: DST, 13: h * chunk, 14: (h + 1) * chunk}
            for h in range(HARTS)
        },
    )

    # Functional check: the program really gathered.
    assert all(machine.peek(DST + 8 * i) == indices[i] * 11 for i in range(COUNT))
    print(f"executed {machine.retired} instructions on {HARTS} harts; "
          f"gather verified correct")

    summary = summarize(machine.trace)
    print(f"trace: {summary.memory_operations} memory ops "
          f"({summary.loads} loads / {summary.stores} stores)")

    stats = MACStats()
    packets = coalesce_trace_fast(
        list(to_requests(machine.trace)), MACConfig(), stats=stats
    )
    print(f"MAC: {stats.memory_raw_requests} raw -> {len(packets)} packets "
          f"({stats.coalescing_efficiency:.1%} efficiency)")

    mac_dev, raw_dev = HMCDevice(), HMCDevice()
    for i, pkt in enumerate(packets):
        mac_dev.submit(pkt, 2 * i)
    for i, pkt in enumerate(dispatch_raw(list(to_requests(machine.trace)))):
        raw_dev.submit(pkt, i)
    print(f"bank conflicts: {mac_dev.bank_conflicts} with MAC "
          f"vs {raw_dev.bank_conflicts} raw")
    print(f"wire traffic:   {mac_dev.stats.wire_bytes:,} B with MAC "
          f"vs {raw_dev.stats.wire_bytes:,} B raw")


if __name__ == "__main__":
    main()
