#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs all experiment drivers at their default (bench) scale and prints
the paper-vs-measured summary.  Expect a few minutes of runtime; for
quick smoke runs pass ``--fast``.

Run:  python examples/paper_figures.py [--fast]
"""

import statistics
import sys

from repro.eval import experiments as E
from repro.eval.report import format_table, human_bytes, pct


def main() -> None:
    fast = "--fast" in sys.argv
    kw = dict(threads=2, ops_per_thread=600) if fast else {}

    print("=" * 70)
    print("Table 1 — configuration")
    for k, v in E.table1_config().items():
        print(f"  {k}: {v}")

    print("=" * 70)
    print("Figure 1 — cache miss rates")
    mr = E.fig1_benchmark_missrates(**({"threads": 2, "ops_per_thread": 600} if fast else {}))
    print(format_table(["benchmark", "miss rate"], [[k, pct(v)] for k, v in mr.items()]))
    print(f"  average {pct(statistics.mean(mr.values()))} (paper 49.09%)")
    sweep = E.fig1_seq_vs_random(accesses=6000 if fast else 60000)
    first, last = list(sweep.values())[0], list(sweep.values())[-1]
    print(f"  seq {pct(first[0])} -> {pct(last[0])} (paper <= 2.36%)")
    print(f"  rnd {pct(first[1])} -> {pct(last[1])} (paper 3.12% -> 63.85%)")

    print("=" * 70)
    print("Figure 3 — bandwidth efficiency vs request size")
    for size, (eff, ovh) in E.fig3_bandwidth_efficiency().items():
        print(f"  {size:>4d} B: eff {pct(eff)}, overhead {pct(ovh)}")

    print("=" * 70)
    print("Figure 9 — requests per cycle (Eq. 2)")
    rpc = E.fig9_requests_per_cycle()
    print(format_table(["benchmark", "RPC"], [[k, round(v, 2)] for k, v in rpc.items()]))
    print(f"  average {statistics.mean(rpc.values()):.2f} (paper ~9.32, all > 2)")

    print("=" * 70)
    print("Figure 10 — coalescing efficiency (2/4/8 threads)")
    f10 = E.fig10_coalescing_efficiency(total_ops=4800 if fast else 24000)
    names = list(f10[8])
    print(
        format_table(
            ["benchmark", "2t", "4t", "8t"],
            [[n, pct(f10[2][n]), pct(f10[4][n]), pct(f10[8][n])] for n in names],
        )
    )
    for t in (2, 4, 8):
        print(f"  avg @{t} threads: {pct(statistics.mean(f10[t].values()))}")
    print("  (paper: 48.37 / 50.51 / 52.86%)")

    print("=" * 70)
    print("Figure 11 — ARQ sweep")
    for n, eff in E.fig11_arq_sweep(**kw).items():
        print(f"  {n:>4d} entries: {pct(eff)}")
    print("  (paper: 37.58% at 8 -> 56.04% at 256)")

    print("=" * 70)
    print("Figure 12 — bank conflicts (without -> with MAC)")
    for name, (raw, mac) in E.fig12_bank_conflicts(**kw).items():
        print(f"  {name:10s} {raw:>8,d} -> {mac:>8,d}  (-{1 - mac / max(raw, 1):.0%})")

    print("=" * 70)
    print("Figure 13 — bandwidth efficiency of coalesced traffic")
    f13 = E.fig13_bandwidth_efficiency(**kw)
    for name, eff in f13.items():
        print(f"  {name:10s} {pct(eff)} (raw: 33.33%)")
    print(f"  average {pct(statistics.mean(f13.values()))} (paper 70.35%)")

    print("=" * 70)
    print("Figure 14 — control bandwidth saved")
    for name, row in E.fig14_bandwidth_saving(**kw).items():
        print(
            f"  {name:10s} {human_bytes(row['saved_bytes']):>12s} "
            f"({row['saved_bytes_per_request']:.1f} B/request)"
        )
    print("  (paper: avg 22.76 GB at ~1e9-request scale)")

    print("=" * 70)
    print("Figure 15 — targets per ARQ entry")
    f15 = E.fig15_targets_per_entry(**kw)
    for name, (avg, peak) in f15.items():
        print(f"  {name:10s} avg {avg:.2f}, max {peak} (limit 12)")
    print(f"  suite avg {statistics.mean(a for a, _ in f15.values()):.2f} (paper 2.13)")

    print("=" * 70)
    print("Figure 16 — space overhead")
    for n, b in E.fig16_space_overhead().items():
        print(f"  {n:>4d} entries: {human_bytes(b)}")

    print("=" * 70)
    print("Figure 17 — memory-system speedup")
    f17 = E.fig17_speedup(**kw)
    for name, row in f17.items():
        print(
            f"  {name:10s} makespan {row['makespan_speedup']:+.1%}, "
            f"latency {row['latency_speedup']:+.1%}"
        )
    mk = statistics.mean(r["makespan_speedup"] for r in f17.values())
    lat = statistics.mean(r["latency_speedup"] for r in f17.values())
    print(f"  averages: makespan {pct(mk)}, latency {pct(lat)} (paper 60.73%)")


if __name__ == "__main__":
    main()
