#!/usr/bin/env python3
"""Fault injection: survive FLIT errors, a dead link and lost responses.

Runs one closed-loop node twice over the same workload — once fault-free
and once with a 1e-3 per-FLIT error rate, link 2 hard-dead from cycle 0
and 2 % of responses dropped in flight — and shows the recovery
machinery earning its keep: CRC/NAK replays on the links, timeout-based
re-issue at the node, duplicate suppression, and degraded-mode steering
around the dead link.  Every request is still delivered exactly once.

Run:  python examples/fault_injection.py
"""

from repro.faults import FaultConfig
from repro.hmc.config import HMCConfig
from repro.node.node import Node
from repro.trace.record import to_requests
from repro.workloads.registry import make


def build_node(hmc_config=None):
    """One node, four cores, replaying the NAS-IS bucket-sort pattern."""
    records = make("is", seed=7).generate(threads=4, ops_per_thread=200)
    by_tid = {}
    for raw in to_requests(records):
        by_tid.setdefault(raw.tid, []).append(raw)
    streams = [iter(v) for _, v in sorted(by_tid.items())]
    return Node(streams, hmc_config=hmc_config)


def main() -> None:
    # --- baseline: no faults ------------------------------------------------
    clean = build_node()
    clean_stats = clean.run()
    print("fault-free run:")
    print(f"  cycles:    {clean_stats.cycles}")
    print(f"  delivered: {clean_stats.responses_delivered}"
          f"/{clean_stats.requests_issued}")

    # --- same workload under injected faults --------------------------------
    faults = FaultConfig.simple(
        flit_ber=1e-3,        # per-FLIT corruption on every link
        drop_rate=0.02,       # 2% of responses vanish in flight
        dead_links=(2,),      # link 2 hard-dead from cycle 0
        seed=42,              # injector RNG: runs are reproducible
        timeout_cycles=5000,  # node re-issues after this silence
    )
    node = build_node(HMCConfig(faults=faults))
    stats = node.run()

    print("faulty run (1e-3 FLIT errors, dead link, 2% response drops):")
    print(f"  cycles:    {stats.cycles}"
          f"  (+{stats.cycles - clean_stats.cycles} for recovery)")
    print(f"  delivered: {stats.responses_delivered}/{stats.requests_issued}"
          "  <- still exactly once")
    print(f"  link CRC errors:      {stats.link_crc_errors}")
    print(f"  link replays:         {stats.link_retries}")
    print(f"  response timeouts:    {stats.response_timeouts}")
    print(f"  re-issued packets:    {stats.reissued_packets}")
    print(f"  duplicates dropped:   {stats.duplicate_responses}")
    print(f"  poisoned deliveries:  {stats.poisoned_responses}")
    print(f"  failed links:         {stats.failed_links}"
          f"  ({stats.link_bandwidth_loss:.0%} of link bandwidth lost)")

    print("per-site fault counters (site -> event -> count):")
    for site, event, count in node.device.fault_stats.rows():
        print(f"  {site:12s} {event:22s} {count}")

    assert stats.responses_delivered == stats.requests_issued
    print()
    print("Same knobs on the CLI:")
    print("  repro trace is -o /tmp/is.trc && \\")
    print("  repro --seed 42 replay /tmp/is.trc --flit-ber 1e-3 --dead-links 2")


if __name__ == "__main__":
    main()
