#!/usr/bin/env python3
"""Bottleneck hunt: where do the cycles go as concurrency scales?

Sweeps thread count over the closed-loop node (cores -> MAC -> HMC)
with attribution enabled, with and without coalescing, and prints for
every point the critical latency stage and the dominant stall cause.

The sweep reproduces the paper's section 5.2 observation in stall-cause
form: the uncoalesced baseline hammers the same DRAM rows with sixteen
separate 16 B packets, so its stall profile is dominated by
``bank_conflict`` cycles and the gap to the MAC grows with concurrency,
while the MAC's coalescing collapses those row-mates into single
packets before they can conflict.

Run:  python examples/bottleneck_hunt.py
"""

from repro.eval.runner import attributed_node_run
from repro.obs.analyze import build_report

WORKLOAD = "HPCG"  # streaming row locality: plenty for the MAC to mine
THREADS_SWEEP = (2, 4, 8)
OPS_PER_THREAD = 600


def hunt(threads: int, coalescing: bool):
    """One sweep point: run the node, reduce to the headline numbers."""
    attrib, node = attributed_node_run(
        WORKLOAD,
        threads=threads,
        ops_per_thread=OPS_PER_THREAD,
        coalescing=coalescing,
    )
    report = build_report(
        attrib, meta={"threads": threads, "coalescing": coalescing}
    )
    top_site, top_cause, top_cycles = report["top_stalls"][0]
    conflict_cycles = sum(
        cycles
        for _, cause, cycles in report["top_stalls"]
        if cause == "bank_conflict"
    )
    return {
        "cycles": node.cycle,
        "mean_latency": report["end_to_end"]["mean"],
        "critical_stage": report["critical_stage"],
        "top_stall": f"{top_cause}@{top_site}",
        "top_stall_cycles": top_cycles,
        "bank_conflict_cycles": conflict_cycles,
        "bank_conflicts": node.device.bank_conflicts,
    }


def main() -> None:
    print(f"bottleneck hunt: {WORKLOAD}, {OPS_PER_THREAD} ops/thread\n")
    header = (
        f"{'threads':>7}  {'mode':<9}  {'cycles':>8}  {'mean lat':>9}  "
        f"{'critical stage':<14}  {'dominant stall':<24}  {'conflict cy':>11}"
    )
    print(header)
    print("-" * len(header))
    rows = {}
    for threads in THREADS_SWEEP:
        for coalescing in (True, False):
            mode = "mac" if coalescing else "baseline"
            r = hunt(threads, coalescing)
            rows[(threads, mode)] = r
            print(
                f"{threads:>7}  {mode:<9}  {r['cycles']:>8}  "
                f"{r['mean_latency']:>9.1f}  {r['critical_stage']:<14}  "
                f"{r['top_stall']:<24}  {r['bank_conflict_cycles']:>11}"
            )

    print()
    for threads in THREADS_SWEEP:
        mac = rows[(threads, "mac")]
        base = rows[(threads, "baseline")]
        ratio = (
            base["bank_conflict_cycles"] / mac["bank_conflict_cycles"]
            if mac["bank_conflict_cycles"]
            else float("inf")
        )
        print(
            f"{threads} threads: baseline burns {ratio:.1f}x the MAC's "
            f"bank-conflict stall cycles "
            f"({base['bank_conflicts']} vs {mac['bank_conflicts']} conflicts)"
        )
    print(
        "\nsection 5.2 in stall-cause form: uncoalesced accesses hammer the "
        "same rows\nwith separate 16 B packets, so bank conflicts dominate "
        "the baseline's stall\nprofile; the MAC coalesces row-mates into "
        "single packets before they conflict."
    )


if __name__ == "__main__":
    main()
