#!/usr/bin/env python3
"""Four-node NUMA system: remote traffic coalesces at its home node.

The paper's Fig. 4 architecture scales to multiple nodes, each with its
own 3D-stacked device; requests for remote memory travel through the
Global Access Queue, the interconnect, and the *home* node's Remote
Access Queue — where they coalesce in the home MAC together with that
node's local traffic.  This example measures exactly that: a shared
dataset interleaved across four nodes, accessed by all of them.

Run:  python examples/numa_multinode.py
"""

from repro.core import MemoryRequest, RequestType
from repro.node import NUMASystem

NODES = 4
CORES_PER_NODE = 2
OPS_PER_CORE = 400
INTERLEAVE = 1 << 10  # 1 KB granularity: 4 rows per node per stripe


def stream(node_id, core_id):
    """Strided walk over the globally shared, node-interleaved array."""
    for i in range(OPS_PER_CORE):
        # All nodes scan the same shared region, offset by their id, so
        # 3/4 of each node's accesses are remote.
        idx = (node_id * 7 + core_id * 3 + i) % 512
        addr = idx * 256 + (i % 16) * 16
        yield MemoryRequest(
            addr=addr,
            rtype=RequestType.LOAD if i % 4 else RequestType.STORE,
            tid=core_id,
            tag=i,
            core=core_id,
            node=node_id,
        )


def main() -> None:
    system = NUMASystem(
        [
            [stream(n, c) for c in range(CORES_PER_NODE)]
            for n in range(NODES)
        ],
        interconnect_latency=120,
        interleave_bytes=INTERLEAVE,
    )
    stats = system.run()

    total_ops = NODES * CORES_PER_NODE * OPS_PER_CORE
    print(f"{NODES} nodes x {CORES_PER_NODE} cores x {OPS_PER_CORE} ops "
          f"= {total_ops} memory operations")
    print(f"executed in {stats.cycles:,} cycles")
    print(f"remote requests routed over the fabric: {stats.remote_requests:,} "
          f"({stats.remote_requests / total_ops:.0%} of traffic)")
    print()
    print(f"{'node':>6s}{'local q':>10s}{'remote q':>10s}"
          f"{'merges':>10s}{'conflicts':>11s}")
    for node in system.nodes:
        r = node.mac.request_router.stats
        print(
            f"{node.node_id:>6d}{r.local:>10,d}{r.inbound_remote:>10,d}"
            f"{node.mac.aggregator.arq.merges:>10,d}"
            f"{node.device.bank_conflicts:>11,d}"
        )
    merges = sum(n.mac.aggregator.arq.merges for n in system.nodes)
    print()
    print(f"cross-node coalescing: {merges:,} merges happened in home-node "
          "MACs, many combining requests from different nodes")


if __name__ == "__main__":
    main()
