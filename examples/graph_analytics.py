#!/usr/bin/env python3
"""Graph analytics on the cache-less node: BFS with and without the MAC.

This is the workload class the paper's introduction motivates: a
breadth-first search over a power-law (R-MAT) graph, with CSR adjacency
streams and random parent[] probes.  The script drives the full
closed-loop node model — 8 in-order cores, SPMs, the MAC, and the HMC
device — and compares against the same node with coalescing disabled.

Run:  python examples/graph_analytics.py
"""

from repro.node import Node
from repro.trace.record import to_requests
from repro.workloads import GAPBFS

THREADS = 8
OPS_PER_THREAD = 1200


def core_streams(trace, cores=THREADS):
    """Split a trace into per-core replay streams."""
    per_core = {c: [] for c in range(cores)}
    for req in to_requests(trace):
        per_core[req.core % cores].append(req)
    return [iter(reqs) for _, reqs in sorted(per_core.items())]


def run(coalescing: bool):
    trace = GAPBFS(seed=7).generate(threads=THREADS, ops_per_thread=OPS_PER_THREAD)
    node = Node(core_streams(trace), coalescing_enabled=coalescing)
    return node.run()


def main() -> None:
    with_mac = run(coalescing=True)
    without = run(coalescing=False)

    print(f"BFS over an R-MAT graph, {THREADS} cores x {OPS_PER_THREAD} memory ops")
    print()
    print(f"{'':24s}{'with MAC':>12s}{'without':>12s}")
    print(f"{'execution cycles':24s}{with_mac.cycles:>12,d}{without.cycles:>12,d}")
    print(
        f"{'bank conflicts':24s}{with_mac.bank_conflicts:>12,d}"
        f"{without.bank_conflicts:>12,d}"
    )
    print(
        f"{'mean memory latency':24s}{with_mac.mean_memory_latency:>12,.0f}"
        f"{without.mean_memory_latency:>12,.0f}"
    )
    print(
        f"{'coalescing efficiency':24s}{with_mac.coalescing_efficiency:>11.1%}"
        f"{0:>12.1%}"
    )
    print()
    print(f"makespan speedup: {1 - with_mac.cycles / without.cycles:.1%}")


if __name__ == "__main__":
    main()
