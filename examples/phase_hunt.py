#!/usr/bin/env python3
"""Phase hunt: *when* do banks conflict, and what does the MAC flatten?

Runs the closed-loop node (cores -> MAC -> HMC) twice — uncoalesced
baseline vs the MAC — with a cycle-windowed :class:`~repro.obs.Timeline`
attached, then reads both runs through ``repro.obs.analyze``'s timeline
layer: phase segmentation (warm-up / steady / drain), the per-epoch
critical stall stage, and the epoch-by-epoch diff that ranks where the
baseline loses the most throughput.

The time-resolved view sharpens ``examples/bottleneck_hunt.py``'s
aggregate story: the baseline's bank-conflict *rate* arrives in bursts
(every thread hammering row-mates with separate 16 B packets at once),
while the MAC's profile is flatter and shorter — the conflicts are
coalesced away before they can pile into a burst.

Run:  python examples/phase_hunt.py
"""

from repro.eval.runner import attributed_node_run
from repro.obs import Timeline
from repro.obs.analyze import diff_timelines, timeline_report

WORKLOAD = "SG"  # scatter/gather: row-mates arrive interleaved
THREADS = 8
OPS_PER_THREAD = 800
EPOCH = 256  # fine epochs: burst structure survives the windowing


def timed_run(coalescing: bool):
    """One closed-loop run with a timeline attached; returns its export."""
    timeline = Timeline(epoch=EPOCH)
    _, node = attributed_node_run(
        WORKLOAD,
        threads=THREADS,
        ops_per_thread=OPS_PER_THREAD,
        coalescing=coalescing,
        timeline=timeline,
    )
    doc = timeline.export()
    doc["meta"]["coalescing"] = coalescing
    return doc, node


def describe(label: str, doc) -> None:
    report = timeline_report(doc)
    phases = ", ".join(
        f"{p['phase']} {p['epochs'][0]}..{p['epochs'][1]} "
        f"({p['activity_share'] * 100:.0f}% of activity)"
        for p in report["phases"]
    )
    print(f"{label}: {doc['cycles']} cycles, phases: {phases}")
    for row in report["critical_stages"]:
        print(
            f"  epochs {row['epochs'][0]:>3}..{row['epochs'][1]:>3}  "
            f"critical: {row['stage']:<14} (raw {row['raw']:.0f})"
        )
    conflicts = doc["series"].get("device.bank_conflicts", {}).get("epochs", {})
    if conflicts:
        peak = max(conflicts.values())
        busy = len(conflicts)
        print(
            f"  bank conflicts: {sum(conflicts.values()):.0f} total over "
            f"{busy} busy epochs, peak {peak:.0f}/epoch"
        )
    print()


def main() -> None:
    print(
        f"phase hunt: {WORKLOAD}, {THREADS} threads, "
        f"{OPS_PER_THREAD} ops/thread, epoch {EPOCH} cycles\n"
    )
    mac_doc, mac_node = timed_run(coalescing=True)
    base_doc, base_node = timed_run(coalescing=False)
    describe("MAC", mac_doc)
    describe("baseline", base_doc)

    diff = diff_timelines(mac_doc, base_doc, top=5)
    print("top epochs where the baseline regresses vs the MAC:")
    for row in diff["top_regressed"]:
        stalls = ", ".join(
            f"{name} {delta:+.0f}"
            for name, delta in sorted(
                row["stall_deltas"].items(), key=lambda kv: -abs(kv[1])
            )
        ) or "no stall delta"
        print(
            f"  epoch {row['epoch']:>3}: activity {row['a']:.0f} -> "
            f"{row['b']:.0f} ({row['delta']:+.0f}); {stalls}"
        )

    ratio = (
        base_node.device.bank_conflicts / mac_node.device.bank_conflicts
        if mac_node.device.bank_conflicts
        else float("inf")
    )
    print(
        f"\nthe uncoalesced baseline hits {ratio:.1f}x the MAC's bank "
        "conflicts, and the timeline\nshows them arriving in bursts the "
        "MAC's profile never develops — the row-mates\nare merged into "
        "single packets before they can conflict."
    )


if __name__ == "__main__":
    main()
