#!/usr/bin/env python3
"""Design-space exploration: ARQ depth, FLIT-table policy, row size.

Sweeps the MAC's main design knobs over three representative workloads
(a streaming stencil, a graph kernel and a histogram) and prints the
efficiency / overfetch trade-offs — the quantitative version of the
paper's sections 4.2-4.3 design discussion, plus its HBM applicability
claim (1 KB rows, section 4.3).

Run:  python examples/design_space.py
"""

from repro.baselines.fixed import useful_data_fraction
from repro.core import FlitTablePolicy, MACConfig, MACStats, coalesce_trace_fast
from repro.trace.record import to_requests
from repro.workloads import make

WORKLOADS = ("MG", "BFS", "IS")


def traces():
    return {
        name: list(to_requests(make(name).generate(threads=8, ops_per_thread=1500)))
        for name in WORKLOADS
    }


def coalesce(requests, **kwargs):
    import copy

    cfg = MACConfig(**kwargs.pop("config", {}))
    stats = MACStats()
    pkts = coalesce_trace_fast(
        [copy.replace(r) if hasattr(copy, "replace") else r for r in requests],
        cfg,
        kwargs.pop("policy", FlitTablePolicy.SPAN),
        stats,
    )
    return pkts, stats


def main() -> None:
    data = traces()

    print("=== ARQ depth sweep (efficiency) ===")
    print(f"{'entries':>8s}" + "".join(f"{n:>10s}" for n in WORKLOADS))
    for entries in (8, 16, 32, 64, 128):
        row = f"{entries:>8d}"
        for name in WORKLOADS:
            _, st = coalesce(data[name], config={"arq_entries": entries})
            row += f"{st.coalescing_efficiency:>10.1%}"
        print(row)

    print()
    print("=== FLIT-table policy (efficiency / useful-data fraction) ===")
    print(f"{'policy':>10s}" + "".join(f"{n:>16s}" for n in WORKLOADS))
    for policy in FlitTablePolicy:
        row = f"{policy.value:>10s}"
        for name in WORKLOADS:
            pkts, st = coalesce(data[name], policy=policy)
            row += f"  {st.coalescing_efficiency:>5.1%}/{useful_data_fraction(pkts):>6.1%}"
        print(row)

    print()
    print("=== Row size (HMC 256 B vs HBM 1 KB, section 4.3) ===")
    print(f"{'row':>8s}" + "".join(f"{n:>10s}" for n in WORKLOADS))
    for row_bytes in (256, 1024):
        row = f"{row_bytes:>7d}B"
        for name in WORKLOADS:
            _, st = coalesce(
                data[name],
                config={"row_bytes": row_bytes, "max_request_bytes": row_bytes},
            )
            row += f"{st.coalescing_efficiency:>10.1%}"
        print(row)
    print()
    print("Larger rows coalesce more aggressively but each transaction")
    print("spans more data — the overfetch/efficiency trade the FLIT")
    print("table manages (sections 4.2.1, 4.3).")


if __name__ == "__main__":
    main()
