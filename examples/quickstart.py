#!/usr/bin/env python3
"""Quickstart: coalesce a burst of raw requests and inspect the result.

Reproduces the paper's Fig. 2 scenario: sixteen threads each load one
16 B FLIT of the same 256 B HMC row.  Without the MAC that is sixteen
packets, sixteen row activations and fifteen bank conflicts; coalesced,
it collapses to two packets (the paper's 64 B ARQ entry holds at most
twelve request targets, so a full row takes 12 + 4).

Run:  python examples/quickstart.py
"""

from repro import (
    HMCDevice,
    MACConfig,
    MACStats,
    MemoryRequest,
    RequestType,
    coalesce_trace_fast,
)
from repro.baselines import dispatch_raw

ROW_BASE = 0x4_0000  # any 256 B-aligned physical address


def make_requests():
    """Sixteen threads touching FLITs 0..15 of one row (Fig. 2)."""
    return [
        MemoryRequest(
            addr=ROW_BASE + flit * 16,
            rtype=RequestType.LOAD,
            tid=flit,  # one hardware thread per FLIT
            tag=0,
        )
        for flit in range(16)
    ]


def replay(packets):
    """Run a packet stream through a fresh HMC device."""
    device = HMCDevice()
    for i, pkt in enumerate(packets):
        device.submit(pkt, 2 * i)
    return device


def main() -> None:
    config = MACConfig()  # the paper's Table 1 configuration

    # --- with the MAC (steady-state window engine) -------------------------
    stats = MACStats()
    packets = coalesce_trace_fast(make_requests(), config, stats=stats)

    print("with MAC:")
    for pkt in packets:
        print(
            f"  packet addr={pkt.addr:#x} size={pkt.size}B "
            f"satisfies {pkt.raw_count} raw requests"
        )
    print(f"  coalescing efficiency: {stats.coalescing_efficiency:.1%}")
    print(f"  (the 64 B ARQ entry caps at {config.target_capacity} targets,")
    print("   so a fully requested row becomes 12 + 4 targets = 2 packets)")

    device = replay(packets)
    print(f"  bank conflicts: {device.bank_conflicts}")
    print(f"  wire traffic:   {device.stats.wire_bytes} B")

    # --- without the MAC ----------------------------------------------------
    raw_packets = dispatch_raw(make_requests())
    raw_device = replay(raw_packets)
    print("without MAC:")
    print(f"  packets:        {len(raw_packets)} x 16 B")
    print(f"  bank conflicts: {raw_device.bank_conflicts}")
    print(f"  wire traffic:   {raw_device.stats.wire_bytes} B")

    speedup = 1 - device.stats.makespan / raw_device.stats.makespan
    print()
    print(f"memory-system speedup from coalescing: {speedup:.1%}")
    print()
    print("Next steps: examples/graph_analytics.py drives the full")
    print("closed-loop node; examples/paper_figures.py regenerates every")
    print("figure of the paper's evaluation.")


if __name__ == "__main__":
    main()
